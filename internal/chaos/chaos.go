// Package chaos is the seeded chaos oracle: a deterministic scenario
// generator that composes adversarial workload distributions, fault plans
// (drop/dup/delay/reorder/crash/stall/die), recovery modes (respawn/
// shrink), exchange backends (ALLTOALLV, fused one-factor, one-sided RMA
// put) and run shapes (P, N, threads) into black-box sorting runs, each
// checked against a four-way oracle:
//
//  1. sortedness + global boundary order — the concatenation of the output
//     partitions in world-rank order is non-decreasing;
//  2. multiset identity — that concatenation is exactly the sorted multiset
//     of every rank's input (elements are neither lost, duplicated, nor
//     invented, even across crash respawns and shrink recoveries);
//  3. imbalance — fault-free scenarios respect the Definition 1 bound
//     (exactly for ε = 0); death scenarios redistribute capacity by design
//     and skip this check;
//  4. replay determinism — the same scenario run twice produces
//     bit-identical outputs and the identical virtual makespan;
//  5. storage independence — out-of-core scenarios re-run with the other
//     store backing (in-memory vs filesystem), and the digest AND the
//     virtual makespan must match: where the spilled runs live can never
//     leak into the output or the modelled schedule.
//
// Every scenario is a pure function of (corpus seed, index), so a failure
// anywhere reproduces from two integers; ReproCommand renders the exact
// command line.
package chaos

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/fault"
	"dhsort/internal/hss"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/prng"
	"dhsort/internal/simnet"
	"dhsort/internal/store"
	"dhsort/internal/workload"
)

// Algorithms the oracle composes over: the sorters with checkpointed
// supersteps and a shrink-recovery path.  Their names select the exchange
// backend too — dhsort runs the ALLTOALLV schedules, dhsort-fused the
// 1-factor exchange fused with merging, dhsort-rma the one-sided
// put+notify exchange.
var Algorithms = []string{"dhsort", "dhsort-fused", "dhsort-rma", "hss"}

// Distributions the generator draws workloads from: the standard grid plus
// every adversarial spec.
var distributions = []workload.Distribution{
	workload.Uniform, workload.Normal, workload.Zipf, workload.NearlySorted,
	workload.DuplicateHeavy, workload.AllEqual, workload.Shifted,
	workload.ReverseSorted, workload.DuplicateFlood, workload.SortedOutliers,
}

// watchdog bounds how long any blocked receive may wait on the wall clock
// before the run aborts with a diagnostic instead of wedging CI.
const watchdog = 60 * time.Second

// Scenario is one composed black-box run, fully determined by (Seed, Index).
type Scenario struct {
	// Index is the scenario's position in its corpus; Seed is the corpus
	// seed it was derived from.  Together they reproduce the scenario.
	Index int
	Seed  uint64

	// Algorithm is one of Algorithms.
	Algorithm string
	// P, PerRank and Threads shape the run.
	P       int
	PerRank int
	Threads int
	// Dist and FloodFrac pick the workload; Epsilon the balance bound.
	Dist      workload.Distribution
	FloodFrac float64
	Epsilon   float64
	// Probes is the histogram probes per unfinished splitter boundary per
	// refinement round (1 = bisection, the classic path).
	Probes int
	// Recovery is core.RecoveryRespawn or core.RecoveryShrink (always
	// shrink when the plan schedules permanent deaths).
	Recovery string
	// Rebalance enables the bounded post-merge rebalance.
	Rebalance bool
	// MemBudget, when positive, runs the scenario out-of-core: every rank
	// spills local-sort runs, exchange segments and durable checkpoint
	// shards into one shared scenario store.  The storage oracle then
	// re-executes the run with the other backing (filesystem instead of
	// memory) and demands the identical digest and virtual makespan.
	MemBudget int64
	// SpillFanIn is the external k-way merge fan-in (0 = store default).
	SpillFanIn int
	// GrowRanks, when positive, exercises the elasticity plane: after the
	// sort completes, the world spawns this many joiner ranks, the Grow
	// collective folds them in, and GrowRebalance re-partitions the sorted
	// output onto the grown communicator — the oracle then demands exact
	// front-loaded balanced shares across ALL ranks, joiners included.
	GrowRanks int
	// GrowDie composes grow with death: the first joiner dies mid-join, so
	// every participant must unwind typed and the incumbents must recover
	// through Revoke/Agree/Shrink on the old communicator, keeping their
	// original sorted partitions intact.
	GrowDie bool
	// Plan is the seeded fault schedule (zero = fault-free).
	Plan fault.Plan
}

// String renders a compact one-line description.
func (s Scenario) String() string {
	f := s.Plan
	faults := ""
	if f.DropRate > 0 {
		faults += fmt.Sprintf(" drop=%.2f", f.DropRate)
	}
	if f.DupRate > 0 {
		faults += fmt.Sprintf(" dup=%.2f", f.DupRate)
	}
	if f.DelayRate > 0 {
		faults += fmt.Sprintf(" delay=%.2f", f.DelayRate)
	}
	if f.ReorderRate > 0 {
		faults += fmt.Sprintf(" reorder=%.2f", f.ReorderRate)
	}
	for _, c := range f.Crashes {
		faults += fmt.Sprintf(" crash=%d@%d", c.Rank, c.Step)
	}
	for _, st := range f.Stalls {
		faults += fmt.Sprintf(" stall=%d@%d", st.Rank, st.Step)
	}
	for _, d := range f.Deaths {
		faults += fmt.Sprintf(" die=%d@%d", d.Rank, d.Step)
	}
	if faults == "" {
		faults = " fault-free"
	}
	extra := ""
	if s.Probes > 1 {
		extra += fmt.Sprintf(" probes=%d", s.Probes)
	}
	if s.Rebalance {
		extra += " rebalance"
	}
	if s.MemBudget > 0 {
		extra += fmt.Sprintf(" spill=%dB", s.MemBudget)
		if s.SpillFanIn > 0 {
			extra += fmt.Sprintf(" fan-in=%d", s.SpillFanIn)
		}
	}
	if s.GrowRanks > 0 {
		extra += fmt.Sprintf(" grow=+%d", s.GrowRanks)
		if s.GrowDie {
			extra += " grow-die"
		}
	}
	return fmt.Sprintf("#%d %s p=%d n=%d t=%d %s eps=%.2f %s%s%s",
		s.Index, s.Algorithm, s.P, s.PerRank, s.Threads, s.Dist, s.Epsilon, s.Recovery, extra, faults)
}

// ReproCommand is the exact command replaying one scenario.
func ReproCommand(s Scenario) string {
	return fmt.Sprintf("go run ./cmd/chaos -seed %d -scenario %d -v", s.Seed, s.Index)
}

// Generate derives scenario index of the corpus seeded with seed.  The
// derivation is a pure function of (seed, index): the same pair always
// yields the same scenario on every machine.
func Generate(seed uint64, index int) Scenario {
	src := prng.NewSplitMix64(seed ^ 0x9e3779b97f4a7c15*uint64(index+1))
	pick := func(n int) int { return int(prng.Uint64n(src, uint64(n))) }
	chance := func(pct int) bool { return pick(100) < pct }

	sc := Scenario{
		Index:     index,
		Seed:      seed,
		Algorithm: Algorithms[pick(len(Algorithms))],
		P:         []int{4, 5, 8, 13, 16}[pick(5)],
		PerRank:   []int{96, 256, 512, 1024}[pick(4)],
		Threads:   1 + pick(2),
		Dist:      distributions[pick(len(distributions))],
		Epsilon:   []float64{0, 0, 0.1, 0.34}[pick(4)],
		Probes:    []int{1, 1, 4, 8}[pick(4)],
		Recovery:  core.RecoveryRespawn,
	}
	if sc.Dist == workload.DuplicateFlood {
		sc.FloodFrac = []float64{0.25, 0.5, 0.75}[pick(3)]
	}
	if chance(25) {
		sc.Rebalance = true
	}
	// HSS interpolation can terminate with a slightly-off splitter on
	// heavy-duplicate inputs (the paper's §VI-B volatility), and boundary
	// refinement can only split the duplicate run of the splitter value it
	// was given — so hss runs always carry the bounded rebalance, which
	// restores the Definition 1 bound whenever the cuts fell short.  The
	// dhsort variants are count-exact by construction and draw it randomly.
	if sc.Algorithm == "hss" {
		sc.Rebalance = true
	}

	plan := fault.Plan{Seed: src.Uint64(), Watchdog: watchdog}
	// Message-level faults on roughly half the corpus.
	if chance(50) {
		plan.DropRate = []float64{0.01, 0.02, 0.05}[pick(3)]
	}
	if chance(30) {
		plan.DupRate = 0.02
	}
	if chance(30) {
		plan.DelayRate = 0.05
	}
	if chance(30) {
		plan.ReorderRate = 0.05
	}
	// Rank-level faults: crashes respawn from checkpoints, stalls cost
	// time, deaths force a shrink recovery.  Crashes/deaths fire at the
	// superstep boundaries 1..3, before the exchange, so every exchange
	// backend composes with them; deaths take distinct steps so each
	// shrink pass handles exactly one victim (the ring mirror guarantees
	// adoptability for a single death per boundary).
	steps := []int{core.StepLocalSort, core.StepSplitting, core.StepCuts}
	switch pick(6) {
	case 0: // one crash
		plan.Crashes = []fault.Crash{{Rank: pick(sc.P), Step: steps[pick(3)]}}
	case 1: // two crashes at distinct steps
		s1, s2 := pick(3), pick(3)
		if s1 == s2 {
			s2 = (s2 + 1) % 3
		}
		plan.Crashes = []fault.Crash{
			{Rank: pick(sc.P), Step: steps[s1]},
			{Rank: pick(sc.P), Step: steps[s2]},
		}
	case 2: // one stall (a straggler, not a failure)
		plan.Stalls = []fault.Stall{{Rank: pick(sc.P), Step: steps[pick(3)],
			D: time.Duration(1+pick(5)) * time.Millisecond}}
	case 3: // one permanent death -> shrink recovery
		plan.Deaths = []fault.Death{{Rank: pick(sc.P), Step: steps[pick(3)]}}
		sc.Recovery = core.RecoveryShrink
	case 4: // two deaths at distinct steps and distinct ranks
		r1 := pick(sc.P)
		r2 := pick(sc.P)
		if r2 == r1 {
			r2 = (r1 + 2) % sc.P // not the ring successor either
		}
		s1, s2 := pick(3), pick(3)
		if s1 == s2 {
			s2 = (s2 + 1) % 3
		}
		plan.Deaths = []fault.Death{
			{Rank: r1, Step: steps[s1]},
			{Rank: r2, Step: steps[s2]},
		}
		sc.Recovery = core.RecoveryShrink
	default: // no rank-level fault
	}
	sc.Plan = plan
	// Out-of-core axis on roughly a quarter of the corpus: a per-rank
	// budget of 1/8 or 1/4 of the input key volume forces spilled runs,
	// composed against every fault class above (crash respawns and shrink
	// adoptions then go through durable checkpoint shards in the shared
	// store).  Drawn last so earlier corpora keep their compositions.
	if chance(25) {
		sc.MemBudget = int64(sc.PerRank) * []int64{1, 2}[pick(2)]
		sc.SpillFanIn = []int{0, 2, 4}[pick(3)]
	}
	// Elasticity axis on roughly a fifth of the crash/death-free corpus:
	// grow the sorted world by 2 or 4 joiners and rebalance onto them.
	// Crash/death plans are excluded — their recovery replays inside the
	// sort would race the post-sort grow choreography, and the grow x die
	// composition has its own dedicated sub-axis: when the plan already
	// carries (deterministic, seeded) message faults — which arm the fault
	// plane's death detection — a third of the grow scenarios kill the
	// first joiner mid-join instead.  Drawn last so every earlier corpus,
	// including the pinned 64-scenario CI set, keeps its compositions.
	if len(plan.Crashes) == 0 && len(plan.Deaths) == 0 && chance(20) {
		sc.GrowRanks = []int{2, 4}[pick(2)]
		msgFaults := plan.DropRate > 0 || plan.DupRate > 0 || plan.DelayRate > 0 || plan.ReorderRate > 0
		if msgFaults && chance(33) {
			sc.GrowDie = true
		}
	}
	return sc
}

// Corpus generates the first n scenarios of a seed.
func Corpus(seed uint64, n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = Generate(seed, i)
	}
	return out
}

// Result is one scenario's verdict.
type Result struct {
	Scenario Scenario
	// Failures lists every oracle violation (empty = pass).
	Failures []string
	// Makespan is the first execution's virtual time; Digest fingerprints
	// its output (and is what the replay check compares).
	Makespan time.Duration
	Digest   uint64
}

// Pass reports whether every oracle held.
func (r Result) Pass() bool { return len(r.Failures) == 0 }

// execution is one full run of a scenario's world.
type execution struct {
	outs     [][]uint64 // final partition by world rank (nil for victims)
	makespan time.Duration
	summary  metrics.Summary
}

// Run executes the scenario twice (three times when it spills) and applies
// the oracles.
func Run(sc Scenario) Result {
	res := Result{Scenario: sc}
	a, err := execute(sc, scenarioStore(sc))
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("run error: %v", err))
		return res
	}
	res.Makespan = a.makespan
	res.Digest = digest(sc, a)
	res.Failures = append(res.Failures, verify(sc, a)...)

	// Replay determinism: schedule replay must be bit-identical.  A fresh
	// store each time — a run must not depend on leftovers of the last.
	// Grow-die scenarios exempt the makespan (the digest already excludes
	// it for them): which barrier round each participant unwinds at depends
	// on whether the dead-rank flag or a peer's revocation reaches it
	// first, so the RECOVERY's virtual cost is discovery-order dependent —
	// the outputs, computed before the failed grow, are still bit-pinned.
	b, err := execute(sc, scenarioStore(sc))
	switch {
	case err != nil:
		res.Failures = append(res.Failures, fmt.Sprintf("replay error: %v", err))
	case digest(sc, b) != res.Digest:
		res.Failures = append(res.Failures, fmt.Sprintf("replay diverged: output digest %x != %x", digest(sc, b), res.Digest))
	case !sc.GrowDie && b.makespan != a.makespan:
		res.Failures = append(res.Failures, fmt.Sprintf("replay diverged: makespan %v != %v", b.makespan, a.makespan))
	}

	// Storage independence: re-run the spilled scenario against a
	// filesystem store.  Cost-model pricing depends only on element
	// counts, so swapping the backing must change neither the output nor
	// the virtual makespan — the invariant that makes the in-memory
	// executions above representative of on-disk runs.
	if sc.MemBudget > 0 {
		dir, err := os.MkdirTemp("", "chaos-spill-")
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("fs scratch: %v", err))
			return res
		}
		c, err := execute(sc, store.NewFS(dir))
		os.RemoveAll(dir)
		switch {
		case err != nil:
			res.Failures = append(res.Failures, fmt.Sprintf("fs-backed run error: %v", err))
		case digest(sc, c) != res.Digest:
			res.Failures = append(res.Failures, fmt.Sprintf("storage backing changed the output: fs digest %x != mem %x", digest(sc, c), res.Digest))
		case !sc.GrowDie && c.makespan != a.makespan:
			res.Failures = append(res.Failures, fmt.Sprintf("storage backing leaked into the schedule: fs makespan %v != mem %v", c.makespan, a.makespan))
		}
	}
	return res
}

// scenarioStore returns a fresh shared store for an out-of-core scenario
// (nil when the scenario is resident).  Memory backing is the default: it
// keeps the corpus hermetic while the fs re-execution in Run covers the
// other side of the axis.
func scenarioStore(sc Scenario) store.Store {
	if sc.MemBudget <= 0 {
		return nil
	}
	return store.NewMem()
}

// spec builds the scenario's workload spec.
func (s Scenario) spec() workload.Spec {
	return workload.Spec{
		Dist: s.Dist, Seed: s.Seed + uint64(s.Index)*1000003, Span: 1e9,
		Ranks: s.P, FloodFrac: s.FloodFrac,
	}
}

// execute runs the scenario's world once against st (nil for resident
// scenarios) and collects the surviving ranks' partitions by world rank.
func execute(sc Scenario, st store.Store) (execution, error) {
	w, err := comm.NewWorldWithFaults(sc.P, simnet.SuperMUC(4, true), sc.Plan)
	if err != nil {
		return execution{}, err
	}
	spec := sc.spec()
	outs := make([][]uint64, sc.P+sc.GrowRanks)
	recs := make([]*metrics.Recorder, sc.P)
	var mu sync.Mutex
	var spawned *comm.Spawned
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), sc.PerRank)
		if err != nil {
			return err
		}
		rec := metrics.ForComm(c)
		mu.Lock()
		recs[c.Rank()] = rec
		mu.Unlock()
		world := c.Rank() // world rank: stable across shrinks
		var out []uint64
		eff := c
		switch sc.Algorithm {
		case "dhsort":
			out, eff, err = core.SortResilient(c, local, keys.Uint64{}, core.Config{
				Epsilon: sc.Epsilon, Probes: sc.Probes, Threads: sc.Threads,
				Recovery: sc.Recovery, Rebalance: sc.Rebalance, Recorder: rec,
				MemBudget: sc.MemBudget, SpillFanIn: sc.SpillFanIn, Store: st,
			})
		case "dhsort-fused":
			out, eff, err = core.SortResilient(c, local, keys.Uint64{}, core.Config{
				Epsilon: sc.Epsilon, Probes: sc.Probes, Merge: core.MergeOverlap,
				Threads: sc.Threads, Recovery: sc.Recovery, Rebalance: sc.Rebalance,
				Recorder:  rec,
				MemBudget: sc.MemBudget, SpillFanIn: sc.SpillFanIn, Store: st,
			})
		case "dhsort-rma":
			out, eff, err = core.SortResilient(c, local, keys.Uint64{}, core.Config{
				Epsilon: sc.Epsilon, Probes: sc.Probes, Exchange: comm.ExchangeRMAPut,
				Threads: sc.Threads, Recovery: sc.Recovery, Rebalance: sc.Rebalance,
				Recorder:  rec,
				MemBudget: sc.MemBudget, SpillFanIn: sc.SpillFanIn, Store: st,
			})
		case "hss":
			out, eff, err = hss.SortResilient(c, local, keys.Uint64{}, hss.Config{
				Epsilon: sc.Epsilon, Probes: sc.Probes, Threads: sc.Threads,
				Recovery: sc.Recovery, Rebalance: sc.Rebalance, Seed: spec.Seed,
				Recorder:  rec,
				MemBudget: sc.MemBudget, SpillFanIn: sc.SpillFanIn, Store: st,
			})
		default:
			return fmt.Errorf("chaos: unknown algorithm %q", sc.Algorithm)
		}
		if err != nil {
			return err
		}
		rec.Finish()
		rec.SetElements(len(local), len(out))
		if !core.IsGloballySorted(eff, out, keys.Uint64{}) {
			return fmt.Errorf("%s: collective sortedness check failed", sc.Algorithm)
		}
		if sc.GrowRanks == 0 {
			mu.Lock()
			outs[world] = out
			mu.Unlock()
			return nil
		}
		return growPhase(sc, w, c, rec, out, outs, &mu, &spawned)
	})
	if err != nil {
		return execution{}, err
	}
	if spawned != nil {
		if werr := spawned.Wait(); werr != nil {
			return execution{}, fmt.Errorf("joiners: %w", werr)
		}
	}
	return execution{outs: outs, makespan: w.Makespan(), summary: metrics.Summarize(recs)}, nil
}

// growPhase is the elasticity half of a grow scenario, entered by every
// incumbent after its sort completed: spawn the joiners (rank 0 only), fold
// them in with the Grow collective, and rebalance the sorted output onto
// the grown communicator.  Under GrowDie the first joiner dies mid-join; the
// incumbents must then unwind typed, recover on the old communicator via
// Revoke/Agree/Shrink, and keep their original partitions — an elasticity
// failure may cost the grow, never sorted data.
func growPhase(sc Scenario, w *comm.World, c *comm.Comm, rec *metrics.Recorder,
	out []uint64, outs [][]uint64, mu *sync.Mutex, spawned **comm.Spawned) error {
	joiners := make([]int, sc.GrowRanks)
	for i := range joiners {
		joiners[i] = sc.P + i
	}
	if c.Rank() == 0 {
		s2, serr := w.Spawn(sc.GrowRanks, func(jc *comm.Comm) error {
			if sc.GrowDie && jc.Rank() == sc.P {
				jc.Die() // never returns
			}
			jerr := comm.Try(func() {
				nc := comm.AwaitGrow(jc, 0)
				part := core.GrowRebalance(nc, nil, keys.Uint64{}, core.Config{})
				mu.Lock()
				outs[nc.WorldRank()] = part
				mu.Unlock()
			})
			if sc.GrowDie {
				return nil // the surviving joiners' typed unwind is the expected outcome
			}
			return jerr
		})
		if serr != nil {
			return serr
		}
		mu.Lock()
		*spawned = s2
		mu.Unlock()
	}
	gerr := comm.Try(func() {
		nc := c.Grow(joiners)
		part := core.GrowRebalance(nc, out, keys.Uint64{}, core.Config{Recorder: rec})
		mu.Lock()
		outs[nc.WorldRank()] = part
		mu.Unlock()
	})
	if gerr == nil {
		return nil
	}
	if !sc.GrowDie {
		return gerr
	}
	// The standard recovery recipe on the old, still-valid communicator:
	// every incumbent survived, so the shrink is an identity re-rank.
	c.Revoke()
	alive, _ := c.Agree(nil)
	c.Shrink(alive)
	mu.Lock()
	outs[c.WorldRank()] = out
	mu.Unlock()
	return nil
}

// digest fingerprints an execution: every output element in world-rank
// order with rank separators, plus the virtual makespan — except for
// grow-die scenarios, whose recovery makespan is discovery-order dependent
// (see Run) and therefore excluded from the fingerprint.
func digest(sc Scenario, e execution) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for r, out := range e.outs {
		put(^uint64(r)) // separator
		for _, v := range out {
			put(v)
		}
	}
	if !sc.GrowDie {
		put(uint64(e.makespan))
	}
	return h.Sum64()
}

// verify applies the host-side oracles to one execution.
func verify(sc Scenario, e execution) []string {
	var fails []string
	spec := sc.spec()

	// Regenerate every rank's input host-side (generation is deterministic)
	// and sort the union: the expected global sequence.
	var expected []uint64
	for r := 0; r < sc.P; r++ {
		in, err := spec.Rank(r, sc.PerRank)
		if err != nil {
			return []string{fmt.Sprintf("workload generation: %v", err)}
		}
		expected = append(expected, in...)
	}
	sort.Slice(expected, func(i, j int) bool { return expected[i] < expected[j] })

	// Sortedness + boundary order + multiset identity in one comparison:
	// the world-rank concatenation of the outputs must BE the sorted input
	// multiset, element for element.
	var got []uint64
	for _, out := range e.outs {
		got = append(got, out...)
	}
	if len(got) != len(expected) {
		fails = append(fails, fmt.Sprintf("multiset: %d elements out, %d in", len(got), len(expected)))
	} else {
		for i := range expected {
			if got[i] != expected[i] {
				fails = append(fails, fmt.Sprintf("order/multiset: global index %d holds %d, want %d", i, got[i], expected[i]))
				break
			}
		}
	}

	// Elastic scenarios replace the partition-shape gate below:
	//   - a successful grow rebalanced the output at zero tolerance, so
	//     every rank of the GROWN world — joiners included — must hold its
	//     exact front-loaded share of the total;
	//   - a failed grow (grow-die) must leave the incumbents' original
	//     partitions untouched and strand nothing on the joiners.
	if sc.GrowRanks > 0 {
		if sc.GrowDie {
			for r := sc.P; r < len(e.outs); r++ {
				if len(e.outs[r]) != 0 {
					fails = append(fails, fmt.Sprintf("grow-die: joiner world rank %d stranded %d elements", r, len(e.outs[r])))
				}
			}
			// The incumbents' shapes fall through to the ordinary gate.
		} else {
			peff := sc.P + sc.GrowRanks
			total := sc.P * sc.PerRank
			for r, out := range e.outs {
				want := total / peff
				if r < total%peff {
					want++
				}
				if len(out) != want {
					fails = append(fails, fmt.Sprintf("grow: rank %d holds %d, want the balanced share %d of a %d-way cut", r, len(out), want, peff))
					break
				}
			}
			return fails
		}
	}

	// Imbalance: death scenarios redistribute capacity by design (the
	// survivors adopt the victims' shards), so only deathless runs are
	// gated.  ε = 0 demands the perfect partition — every surviving rank
	// ends with exactly its input capacity; ε > 0 allows the Definition 1
	// bound, or a recorded rebalance that restored it.
	if len(sc.Plan.Deaths) == 0 {
		incumbents := e.outs[:sc.P]
		maxOut := 0
		for _, out := range incumbents {
			if len(out) > maxOut {
				maxOut = len(out)
			}
		}
		if sc.Epsilon == 0 {
			for r, out := range incumbents {
				if len(out) != sc.PerRank {
					fails = append(fails, fmt.Sprintf("imbalance: eps=0 but rank %d holds %d != %d", r, len(out), sc.PerRank))
					break
				}
			}
		} else if bound := int(float64(sc.PerRank)*(1+sc.Epsilon)) + 1; maxOut > bound {
			fails = append(fails, fmt.Sprintf("imbalance: max bucket %d exceeds bound %d (eps=%.2f) with no recorded rebalance (rebalances=%d)",
				maxOut, bound, sc.Epsilon, e.summary.Rebalances))
		}
	}
	return fails
}
