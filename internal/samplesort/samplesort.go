// Package samplesort implements the classic sample sort of §III-A — the
// oldest scalable distribution sort and the conceptual ancestor of the
// paper's algorithm — in both its random-oversampling form [9][10] and the
// regular-sampling (PSRS) form of Shi and Schaeffer [12].
//
// Sample sort determines all splitters from a single round of sampling, so
// its load balance is probabilistic: with oversampling factor s each rank
// ends up with O(N/P · (1 + 1/√s)) elements rather than the perfect
// partition the histogram sort guarantees.  The benchmarks use it to show
// what the iterative histogramming buys.
package samplesort

import (
	"fmt"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/prng"
	"dhsort/internal/sortutil"
)

// Variant selects the sampling strategy.
type Variant int

const (
	// RandomSampling draws the oversample uniformly at random (the
	// original Frazer–McKellar scheme).
	RandomSampling Variant = iota
	// RegularSampling probes the locally sorted partition at regular
	// strides (PSRS), which achieves better balance in practice (§III-A).
	RegularSampling
)

// String returns the variant name.
func (v Variant) String() string {
	if v == RegularSampling {
		return "regular"
	}
	return "random"
}

// Config tunes a sample sort.
type Config struct {
	// Variant selects random oversampling or regular sampling.
	Variant Variant
	// Oversampling is the number of samples per rank (s).  0 means 32.
	Oversampling int
	// Seed drives random sampling.
	Seed uint64
	// TieBreak breaks splitter ties by a stable secondary image: keys are
	// lifted to globally unique (key, rank, index) triples before sampling
	// and partitioning, so a heavy-hitter duplicate run (e.g. a flooded
	// value holding half the input) splits across ranks instead of landing
	// on whichever single rank owns the value-only splitter interval — the
	// PGX.D skew fix.  Costs 8 extra bytes per key during the exchange.
	TieBreak bool
	// VirtualScale prices bulk data at a multiple of its real size,
	// matching core.Config.VirtualScale.
	VirtualScale float64
	// Recorder receives phase timings.
	Recorder *metrics.Recorder
}

func (cfg Config) oversampling() int {
	if cfg.Oversampling <= 0 {
		return 32
	}
	return cfg.Oversampling
}

func (cfg Config) scale() float64 {
	if cfg.VirtualScale < 1 {
		return 1
	}
	return cfg.VirtualScale
}

// Sort sorts the distributed sequence collectively and returns this rank's
// partition: superstep 1 samples, superstep 2 picks splitters centrally,
// superstep 3 exchanges data in one ALLTOALLV (§III-A).  The input is not
// modified.  Balance is probabilistic, not perfect.
func Sort[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	if cfg.Variant != RandomSampling && cfg.Variant != RegularSampling {
		return nil, fmt.Errorf("samplesort: unknown variant %d", int(cfg.Variant))
	}
	if cfg.TieBreak {
		// Lift to globally unique (key, rank, index) triples: every sampled
		// splitter then cuts *inside* a duplicate run, distributing it.
		cfg.Recorder.SetTieBreak()
		triples := keys.MakeUnique(local, c.Rank())
		if model := c.Model(); model != nil {
			c.Clock().Advance(model.ScanCost(int(float64(len(local)) * cfg.scale())))
		}
		out, err := sortImpl(c, triples, keys.NewTripleOps(ops), cfg)
		if err != nil {
			return nil, err
		}
		return keys.StripUnique(out), nil
	}
	return sortImpl(c, local, ops, cfg)
}

// sortImpl runs the three supersteps (separate from Sort so the tie-break
// path can instantiate it on triples without a generic instantiation cycle).
func sortImpl[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	p := c.Size()
	model := c.Model()
	scale := cfg.scale()
	rec := cfg.Recorder

	// Local sort first (needed by regular sampling and by the partition
	// step's binary searches).
	rec.Enter(metrics.LocalSort)
	sorted := make([]K, len(local))
	copy(sorted, local)
	sortutil.Sort(sorted, ops.Less)
	if model != nil {
		c.Clock().Advance(model.SortCost(int(float64(len(sorted)) * scale)))
	}
	if p == 1 {
		rec.Finish()
		return sorted, nil
	}

	// 1. Sampling: each rank contributes s keys.
	rec.Enter(metrics.Histogram) // splitter determination phase
	s := cfg.oversampling()
	var sample []K
	switch {
	case len(sorted) == 0:
		// Sparse rank: contributes nothing.
	case cfg.Variant == RegularSampling:
		sample = make([]K, 0, s)
		for i := 1; i <= s; i++ {
			idx := i*len(sorted)/(s+1) - 1
			if idx < 0 {
				idx = 0
			}
			sample = append(sample, sorted[idx])
		}
	default:
		src := prng.NewXoshiro256(cfg.Seed ^ uint64(c.Rank()+1)*0x9e3779b97f4a7c15)
		sample = make([]K, s)
		for i := range sample {
			sample[i] = sorted[prng.Uint64n(src, uint64(len(sorted)))]
		}
	}

	// 2. Splitting: a central rank sorts the gathered samples and picks
	// P-1 equidistant splitters, then broadcasts them.
	gathered := comm.Gather(c, 0, sample)
	var splitters []K
	if c.Rank() == 0 {
		var all []K
		for _, b := range gathered {
			all = append(all, b...)
		}
		sortutil.Sort(all, ops.Less)
		if model != nil {
			c.Clock().Advance(model.SortCost(len(all)))
		}
		splitters = make([]K, 0, p-1)
		for i := 1; i < p; i++ {
			if len(all) == 0 {
				break
			}
			idx := i*len(all)/p - 1
			if idx < 0 {
				idx = 0
			}
			splitters = append(splitters, all[idx])
		}
	}
	splitters = comm.Bcast(c, 0, splitters)

	// 3. Data exchange: partition the sorted run by the splitters and
	// exchange in a single ALLTOALLV.
	rec.Enter(metrics.Other)
	sendCounts := make([]int, p)
	if len(splitters) == 0 {
		// Globally empty sample (all ranks empty): nothing moves.
		sendCounts[0] = len(sorted)
	} else {
		prev := 0
		for d := 0; d < p-1; d++ {
			cut := sortutil.UpperBound(sorted, splitters[d], ops.Less)
			if cut < prev {
				cut = prev
			}
			sendCounts[d] = cut - prev
			prev = cut
		}
		sendCounts[p-1] = len(sorted) - prev
	}
	if model != nil {
		c.Clock().Advance(model.SearchCost(len(sorted), p-1))
	}
	rec.Enter(metrics.Exchange)
	recv, recvCounts := comm.Alltoallv(c, sorted, sendCounts, scale)

	// Merge the received runs (binary merge tree).
	rec.Enter(metrics.Merge)
	runs := make([][]K, 0, p)
	off := 0
	for _, n := range recvCounts {
		if n > 0 {
			runs = append(runs, recv[off:off+n])
		}
		off += n
	}
	out := sortutil.MergeKBinary(runs, ops.Less)
	if model != nil {
		c.Clock().Advance(model.MergeCost(int(float64(len(recv))*scale), len(runs)))
	}
	rec.Finish()
	return out, nil
}
