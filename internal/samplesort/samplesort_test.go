package samplesort

import (
	"sort"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

var u64 = keys.Uint64{}

func runIt(t *testing.T, p, perRank int, spec workload.Spec, cfg Config, model *simnet.CostModel) (ins, outs [][]uint64) {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	ins = make([][]uint64, p)
	outs = make([][]uint64, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		out, err := Sort(c, local, u64, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ins, outs
}

func checkSortedPermutation(t *testing.T, ins, outs [][]uint64) {
	t.Helper()
	var all, got []uint64
	for _, in := range ins {
		all = append(all, in...)
	}
	var prev uint64
	first := true
	for r, out := range outs {
		for i, v := range out {
			if !first && v < prev {
				t.Fatalf("order violated at rank %d index %d", r, i)
			}
			prev, first = v, false
		}
		got = append(got, out...)
	}
	if len(got) != len(all) {
		t.Fatalf("count changed: %d -> %d", len(all), len(got))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("not a permutation at %d", i)
		}
	}
}

func TestSampleSortBothVariants(t *testing.T) {
	for _, v := range []Variant{RandomSampling, RegularSampling} {
		for _, p := range []int{1, 2, 5, 8, 13} {
			spec := workload.Spec{Dist: workload.Uniform, Seed: uint64(p) + 1, Span: 1e9}
			ins, outs := runIt(t, p, 500, spec, Config{Variant: v, Seed: 3}, nil)
			checkSortedPermutation(t, ins, outs)
		}
	}
}

func TestSampleSortSkewedAndDuplicates(t *testing.T) {
	for _, d := range []workload.Distribution{workload.Zipf, workload.DuplicateHeavy, workload.AllEqual, workload.NearlySorted} {
		spec := workload.Spec{Dist: d, Seed: 9, Span: 1e9}
		ins, outs := runIt(t, 6, 400, spec, Config{Variant: RegularSampling}, nil)
		checkSortedPermutation(t, ins, outs)
	}
}

func TestSampleSortSparse(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 4, Span: 1e9, Sparse: 2}
	ins, outs := runIt(t, 8, 300, spec, Config{Variant: RandomSampling, Seed: 5}, nil)
	checkSortedPermutation(t, ins, outs)
}

func TestSampleSortEmpty(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 4, Span: 1e9}
	ins, outs := runIt(t, 4, 0, spec, Config{}, nil)
	checkSortedPermutation(t, ins, outs)
}

func TestRegularSamplingBalancesBetter(t *testing.T) {
	// §III-A: regular sampling achieves near-perfect balance on uniform
	// inputs; random sampling is noisier.  Compare worst-rank loads.
	imbalance := func(v Variant) float64 {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 31, Span: 1e9}
		_, outs := runIt(t, 8, 2000, spec, Config{Variant: v, Seed: 7, Oversampling: 16}, nil)
		maxN := 0
		for _, o := range outs {
			if len(o) > maxN {
				maxN = len(o)
			}
		}
		return float64(maxN) / 2000
	}
	reg := imbalance(RegularSampling)
	if reg > 1.35 {
		t.Errorf("regular sampling imbalance %v too high", reg)
	}
}

func TestSampleSortUnderCostModel(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 8, Span: 1e9}
	ins, outs := runIt(t, 12, 250, spec, Config{Variant: RegularSampling}, model)
	checkSortedPermutation(t, ins, outs)
}

func TestSampleSortInvalidVariant(t *testing.T) {
	w, _ := comm.NewWorld(1, nil)
	err := w.Run(func(c *comm.Comm) error {
		_, err := Sort(c, []uint64{1}, u64, Config{Variant: Variant(7)})
		return err
	})
	if err == nil {
		t.Fatal("unknown variant must be rejected")
	}
}

func TestVariantString(t *testing.T) {
	if RandomSampling.String() != "random" || RegularSampling.String() != "regular" {
		t.Error("variant names wrong")
	}
}
