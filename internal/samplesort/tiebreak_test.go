package samplesort

import (
	"testing"

	"dhsort/internal/workload"
)

// imbalance returns max(|out_r|) · P / N for the output partition.
func imbalance(outs [][]uint64) float64 {
	total, max := 0, 0
	for _, o := range outs {
		total += len(o)
		if len(o) > max {
			max = len(o)
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(len(outs)) / float64(total)
}

// A duplicate flood holding half the input collapses onto one rank under
// value-only splitters (imbalance ≈ P/2), and splits across ranks with the
// (key, rank, index) tie-break.
func TestTieBreakSplitsDuplicateFlood(t *testing.T) {
	const p, perRank = 8, 1000
	spec := workload.Spec{Dist: workload.DuplicateFlood, Seed: 11, Span: 1e9, FloodFrac: 0.5}

	_, plain := runIt(t, p, perRank, spec, Config{Variant: RegularSampling}, nil)
	if got := imbalance(plain); got < 2.0 {
		t.Fatalf("flood did not breach without tie-breaking: imbalance %.2f (adversary too weak for the test to mean anything)", got)
	}

	ins, tied := runIt(t, p, perRank, spec, Config{Variant: RegularSampling, TieBreak: true}, nil)
	checkSortedPermutation(t, ins, tied)
	// Regular sampling's bound is probabilistic; 1.5 is far below the ≈4.0
	// collapse and stable for this seed.
	if got := imbalance(tied); got > 1.5 {
		t.Fatalf("tie-breaking left imbalance %.2f", got)
	}
}

// Tie-breaking must not disturb correctness on the other adversaries.
func TestTieBreakStaysCorrect(t *testing.T) {
	for _, d := range []workload.Distribution{workload.AllEqual, workload.Zipf, workload.SortedOutliers} {
		spec := workload.Spec{Dist: d, Seed: 7, Span: 1e9}
		ins, outs := runIt(t, 6, 400, spec, Config{Variant: RandomSampling, Seed: 3, TieBreak: true}, nil)
		checkSortedPermutation(t, ins, outs)
	}
}
