package trace

import (
	"testing"
	"time"
)

func TestFaultSpans(t *testing.T) {
	clk := virtualClock()
	r := NewRecorder(clk)
	r.Enter(LocalSort)
	clk.Advance(2 * time.Millisecond)
	r.AddFaultSpan("inject", "drop tag=3 seq=1", 0)
	r.Enter(Exchange)
	clk.Advance(1 * time.Millisecond)
	r.AddFaultSpan("recover", "restored step 2", 500*time.Microsecond)
	r.Finish()

	if len(r.Faults) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(r.Faults))
	}
	first, second := r.Faults[0], r.Faults[1]
	if first.Kind != "inject" || first.Phase != LocalSort || first.At != 2*time.Millisecond {
		t.Errorf("first span %+v: wrong kind/phase/timestamp", first)
	}
	if second.Kind != "recover" || second.Phase != Exchange || second.At != 3*time.Millisecond || second.Dur != 500*time.Microsecond {
		t.Errorf("second span %+v: wrong kind/phase/timestamp/duration", second)
	}
	if second.Detail != "restored step 2" {
		t.Errorf("detail %q lost", second.Detail)
	}
}

func TestFaultSpanCap(t *testing.T) {
	r := NewRecorder(virtualClock())
	for i := 0; i < maxFaultSpans+100; i++ {
		r.AddFaultSpan("inject", "flood", 0)
	}
	if len(r.Faults) != maxFaultSpans {
		t.Errorf("span list grew to %d, cap is %d", len(r.Faults), maxFaultSpans)
	}
	if r.FaultsDropped != 100 {
		t.Errorf("overflow count %d, want 100", r.FaultsDropped)
	}
}
