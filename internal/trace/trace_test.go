package trace

import (
	"testing"
	"time"

	"dhsort/internal/simnet"
)

func virtualClock() *simnet.Clock {
	return simnet.NewClock(simnet.SuperMUC(16, true))
}

func TestRecorderPhases(t *testing.T) {
	clk := virtualClock()
	r := NewRecorder(clk)
	clk.Advance(5 * time.Millisecond) // Other
	r.Enter(LocalSort)
	clk.Advance(10 * time.Millisecond)
	r.Enter(Histogram)
	clk.Advance(3 * time.Millisecond)
	r.Enter(Exchange)
	clk.Advance(7 * time.Millisecond)
	r.Enter(Merge)
	clk.Advance(2 * time.Millisecond)
	r.Finish()
	want := map[Phase]time.Duration{
		Other: 5 * time.Millisecond, LocalSort: 10 * time.Millisecond,
		Histogram: 3 * time.Millisecond, Exchange: 7 * time.Millisecond,
		Merge: 2 * time.Millisecond,
	}
	for p, d := range want {
		if r.Times[p] != d {
			t.Errorf("%v = %v, want %v", p, r.Times[p], d)
		}
	}
	if r.Total() != 27*time.Millisecond {
		t.Errorf("total = %v", r.Total())
	}
}

func TestRecorderReentersPhase(t *testing.T) {
	clk := virtualClock()
	r := NewRecorder(clk)
	r.Enter(Histogram)
	clk.Advance(time.Millisecond)
	r.Enter(Other)
	r.Enter(Histogram)
	clk.Advance(2 * time.Millisecond)
	r.Finish()
	if r.Times[Histogram] != 3*time.Millisecond {
		t.Errorf("Histogram = %v", r.Times[Histogram])
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Enter(LocalSort)
	r.Finish()
	r.AddIteration()
	r.AddExchangedBytes(10)
}

func TestCounters(t *testing.T) {
	r := NewRecorder(virtualClock())
	for i := 0; i < 30; i++ {
		r.AddIteration()
	}
	r.AddExchangedBytes(100)
	r.AddExchangedBytes(28)
	if r.Iterations != 30 || r.ExchangedBytes != 128 {
		t.Errorf("counters: %d, %d", r.Iterations, r.ExchangedBytes)
	}
}

func TestSummarize(t *testing.T) {
	mk := func(sortMs, histMs int, iters int, bytes int64) *Recorder {
		clk := virtualClock()
		r := NewRecorder(clk)
		r.Enter(LocalSort)
		clk.Advance(time.Duration(sortMs) * time.Millisecond)
		r.Enter(Histogram)
		clk.Advance(time.Duration(histMs) * time.Millisecond)
		r.Finish()
		r.Iterations = iters
		r.ExchangedBytes = bytes
		return r
	}
	recs := []*Recorder{mk(10, 2, 30, 100), mk(20, 4, 31, 200), nil}
	s := Summarize(recs)
	if s.Times[LocalSort] != 15*time.Millisecond {
		t.Errorf("mean LocalSort = %v", s.Times[LocalSort])
	}
	if s.Times[Histogram] != 3*time.Millisecond {
		t.Errorf("mean Histogram = %v", s.Times[Histogram])
	}
	if s.MaxIterations != 31 {
		t.Errorf("iterations = %d", s.MaxIterations)
	}
	if s.ExchangedBytes != 300 {
		t.Errorf("bytes = %d", s.ExchangedBytes)
	}
	if s.Total() != 18*time.Millisecond {
		t.Errorf("total = %v", s.Total())
	}
	frac := s.Fraction(LocalSort)
	if frac < 0.83 || frac > 0.84 {
		t.Errorf("fraction = %v", frac)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Total() != 0 || s.Fraction(LocalSort) != 0 {
		t.Error("empty summary must be zero")
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{
		LocalSort: "LocalSort", Histogram: "Histogram", Exchange: "Exchange",
		Merge: "Merge", Other: "Other", Phase(42): "Unknown",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
}
