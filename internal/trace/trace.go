// Package trace records per-rank phase timings and algorithm counters,
// producing the phase breakdowns of Fig. 2(b) and Fig. 3(b).
package trace

import (
	"time"

	"dhsort/internal/simnet"
)

// Phase identifies one superstep of the sorting pipeline.
type Phase int

// The phases the paper's evaluation breaks executions into.
const (
	// LocalSort is the initial local sort superstep.
	LocalSort Phase = iota
	// Histogram is the splitter-determination superstep (§V-A).
	Histogram
	// Exchange is the ALL-TO-ALLV data exchange superstep (§V-B).
	Exchange
	// Merge is the local merge superstep (§V-C).
	Merge
	// Other covers setup, permutation-matrix construction, and teardown.
	Other
	// NumPhases is the number of phases.
	NumPhases
)

// String returns the phase name as used in the figures.
func (p Phase) String() string {
	switch p {
	case LocalSort:
		return "LocalSort"
	case Histogram:
		return "Histogram"
	case Exchange:
		return "Exchange"
	case Merge:
		return "Merge"
	case Other:
		return "Other"
	}
	return "Unknown"
}

// Recorder accumulates one rank's time per phase against its clock.  A nil
// *Recorder is valid and records nothing, so algorithms can run untraced.
type Recorder struct {
	clock *simnet.Clock
	mark  time.Duration
	cur   Phase

	// Times is the accumulated duration per phase.
	Times [NumPhases]time.Duration
	// Iterations counts histogramming iterations (§V-A).
	Iterations int
	// ExchangedBytes counts this rank's outgoing data-exchange volume.
	ExchangedBytes int64
}

// NewRecorder returns a recorder ticking on clock, starting in Other.
func NewRecorder(clock *simnet.Clock) *Recorder {
	return &Recorder{clock: clock, mark: clock.Now(), cur: Other}
}

// Enter closes the current phase and starts p.
func (r *Recorder) Enter(p Phase) {
	if r == nil {
		return
	}
	now := r.clock.Now()
	r.Times[r.cur] += now - r.mark
	r.mark = now
	r.cur = p
}

// Finish closes the current phase (into its accumulator) and parks the
// recorder in Other.
func (r *Recorder) Finish() {
	r.Enter(Other)
}

// AddIteration bumps the histogramming iteration counter.
func (r *Recorder) AddIteration() {
	if r != nil {
		r.Iterations++
	}
}

// AddExchangedBytes accounts outgoing exchange volume.
func (r *Recorder) AddExchangedBytes(n int64) {
	if r != nil {
		r.ExchangedBytes += n
	}
}

// Total returns the summed phase times.
func (r *Recorder) Total() time.Duration {
	var t time.Duration
	for _, d := range r.Times {
		t += d
	}
	return t
}

// Summary aggregates recorders across ranks.
type Summary struct {
	// Times is the mean per-phase duration across ranks.
	Times [NumPhases]time.Duration
	// MaxIterations is the largest per-rank iteration count (iterations
	// are identical on every rank, so this is *the* iteration count).
	MaxIterations int
	// ExchangedBytes is the total exchanged volume across ranks.
	ExchangedBytes int64
}

// Summarize averages phase times over ranks (nil recorders are skipped).
func Summarize(recs []*Recorder) Summary {
	var s Summary
	n := 0
	for _, r := range recs {
		if r == nil {
			continue
		}
		n++
		for p := Phase(0); p < NumPhases; p++ {
			s.Times[p] += r.Times[p]
		}
		if r.Iterations > s.MaxIterations {
			s.MaxIterations = r.Iterations
		}
		s.ExchangedBytes += r.ExchangedBytes
	}
	if n > 0 {
		for p := Phase(0); p < NumPhases; p++ {
			s.Times[p] /= time.Duration(n)
		}
	}
	return s
}

// Total returns the summed mean phase times.
func (s Summary) Total() time.Duration {
	var t time.Duration
	for _, d := range s.Times {
		t += d
	}
	return t
}

// Fraction returns phase p's share of the total (0 when the total is zero).
func (s Summary) Fraction(p Phase) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	return float64(s.Times[p]) / float64(total)
}
