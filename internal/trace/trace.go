// Package trace records per-rank phase timings and algorithm counters,
// producing the phase breakdowns of Fig. 2(b) and Fig. 3(b).
package trace

import (
	"time"

	"dhsort/internal/simnet"
)

// Phase identifies one superstep of the sorting pipeline.
type Phase int

// The phases the paper's evaluation breaks executions into.
const (
	// LocalSort is the initial local sort superstep.
	LocalSort Phase = iota
	// Histogram is the splitter-determination superstep (§V-A).
	Histogram
	// Exchange is the ALL-TO-ALLV data exchange superstep (§V-B).
	Exchange
	// Merge is the local merge superstep (§V-C).
	Merge
	// Other covers setup, permutation-matrix construction, and teardown.
	Other
	// NumPhases is the number of phases.
	NumPhases
)

// String returns the phase name as used in the figures.
func (p Phase) String() string {
	switch p {
	case LocalSort:
		return "LocalSort"
	case Histogram:
		return "Histogram"
	case Exchange:
		return "Exchange"
	case Merge:
		return "Merge"
	case Other:
		return "Other"
	}
	return "Unknown"
}

// FaultSpan is one fault-plane occurrence on a rank's timeline: an injected
// fault, its detection, a repair attempt, or a completed recovery — the
// trace-level explanation for why a superstep ran slow.  Kind carries the
// fault.EventKind label ("inject", "detect", "retry", "recover"); trace
// stays decoupled from the fault package by storing it as a string.
type FaultSpan struct {
	Kind   string
	Phase  Phase         // superstep the event interrupted
	At     time.Duration // clock time the event was recorded
	Dur    time.Duration // time the event cost (backoff wait, recovery)
	Detail string
}

// maxFaultSpans caps the per-rank span list; a high-rate injection schedule
// can emit millions of events, and the tail adds nothing a counter doesn't.
const maxFaultSpans = 4096

// Recorder accumulates one rank's time per phase against its clock.  A nil
// *Recorder is valid and records nothing, so algorithms can run untraced.
type Recorder struct {
	clock *simnet.Clock
	mark  time.Duration
	cur   Phase

	// Times is the accumulated duration per phase.
	Times [NumPhases]time.Duration
	// Iterations counts histogramming iterations (§V-A).
	Iterations int
	// ExchangedBytes counts this rank's outgoing data-exchange volume.
	ExchangedBytes int64
	// Faults is the rank's fault-event timeline (capped at maxFaultSpans;
	// FaultsDropped counts the overflow).
	Faults        []FaultSpan
	FaultsDropped int
}

// NewRecorder returns a recorder ticking on clock, starting in Other.
func NewRecorder(clock *simnet.Clock) *Recorder {
	return &Recorder{clock: clock, mark: clock.Now(), cur: Other}
}

// Enter closes the current phase and starts p.
func (r *Recorder) Enter(p Phase) {
	if r == nil {
		return
	}
	now := r.clock.Now()
	r.Times[r.cur] += now - r.mark
	r.mark = now
	r.cur = p
}

// Finish closes the current phase (into its accumulator) and parks the
// recorder in Other.
func (r *Recorder) Finish() {
	r.Enter(Other)
}

// AddIteration bumps the histogramming iteration counter.
func (r *Recorder) AddIteration() {
	if r != nil {
		r.Iterations++
	}
}

// AddExchangedBytes accounts outgoing exchange volume.
func (r *Recorder) AddExchangedBytes(n int64) {
	if r != nil {
		r.ExchangedBytes += n
	}
}

// AddFaultSpan appends a fault event to the rank's timeline, stamped with
// the current clock and phase.  Spans beyond maxFaultSpans are counted, not
// stored.
func (r *Recorder) AddFaultSpan(kind, detail string, dur time.Duration) {
	if r == nil {
		return
	}
	if len(r.Faults) >= maxFaultSpans {
		r.FaultsDropped++
		return
	}
	r.Faults = append(r.Faults, FaultSpan{
		Kind: kind, Phase: r.cur, At: r.clock.Now(), Dur: dur, Detail: detail,
	})
}

// Total returns the summed phase times.
func (r *Recorder) Total() time.Duration {
	var t time.Duration
	for _, d := range r.Times {
		t += d
	}
	return t
}

// Summary aggregates recorders across ranks.
type Summary struct {
	// Times is the mean per-phase duration across ranks.
	Times [NumPhases]time.Duration
	// MaxIterations is the largest per-rank iteration count (iterations
	// are identical on every rank, so this is *the* iteration count).
	MaxIterations int
	// ExchangedBytes is the total exchanged volume across ranks.
	ExchangedBytes int64
}

// Summarize averages phase times over ranks (nil recorders are skipped).
func Summarize(recs []*Recorder) Summary {
	var s Summary
	n := 0
	for _, r := range recs {
		if r == nil {
			continue
		}
		n++
		for p := Phase(0); p < NumPhases; p++ {
			s.Times[p] += r.Times[p]
		}
		if r.Iterations > s.MaxIterations {
			s.MaxIterations = r.Iterations
		}
		s.ExchangedBytes += r.ExchangedBytes
	}
	if n > 0 {
		for p := Phase(0); p < NumPhases; p++ {
			s.Times[p] /= time.Duration(n)
		}
	}
	return s
}

// Total returns the summed mean phase times.
func (s Summary) Total() time.Duration {
	var t time.Duration
	for _, d := range s.Times {
		t += d
	}
	return t
}

// Fraction returns phase p's share of the total (0 when the total is zero).
func (s Summary) Fraction(p Phase) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	return float64(s.Times[p]) / float64(total)
}
