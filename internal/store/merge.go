package store

import (
	"fmt"
	"io"

	"dhsort/internal/xmath"
)

// Span addresses a sorted record range [Lo, Hi) of a sealed run — the unit
// the external merge consumes.  A whole run is Span{Name, 0, Len(Name)}; a
// sub-range lets the exchange treat one segment of the sorted partition run
// as its own input without copying it.
type Span struct {
	Name   string
	Lo, Hi int64
}

// Len returns the span's record count.
func (s Span) Len() int64 { return s.Hi - s.Lo }

// DefaultFanIn is the merge fan-in when the caller does not set one: the
// number of runs merged simultaneously in one pass.  Spilling a working set
// at 1/8 of memory produces 8 local-sort runs, so the default completes the
// common case in a single pass while keeping open-stream state small.
const DefaultFanIn = 8

// Merger streams the ascending k-way merge of sorted spans through a loser
// tree — the tournament merge of the Local Merge superstep (§V-C), lifted
// to disk-resident runs.  When the span count exceeds the fan-in, NewMerger
// first collapses groups of fanIn spans into intermediate runs (multi-pass
// external merging) until one pass suffices, so at most fanIn streams are
// ever open at once.  Records compare as unsigned 128-bit key images, with
// the input span order breaking ties — deterministic, and content-identical
// to any in-memory merge of the same runs because equal images decode to
// indistinguishable keys.
type Merger struct {
	st      Store
	streams []*spanStream
	tree    []int // tree[0] is the winner; inner nodes park losers (-1 = empty)
	temps   []string
	total   int64
}

// NewMerger builds the merge of spans with the given fan-in (values < 2 take
// DefaultFanIn).  tmpPrefix names the intermediate runs of multi-pass
// merging (tmpPrefix + ".m<gen>"); callers running concurrently must use
// distinct prefixes.  Close releases the open streams and removes the
// intermediates.
func NewMerger(st Store, spans []Span, fanIn int, tmpPrefix string) (*Merger, error) {
	if fanIn < 2 {
		fanIn = DefaultFanIn
	}
	live := make([]Span, 0, len(spans))
	for _, s := range spans {
		if s.Len() > 0 {
			live = append(live, s)
		}
	}
	// Multi-pass reduction: collapse groups of fanIn spans into intermediate
	// runs until one pass covers the rest.  Every record passes through at
	// most ceil(log_fanIn(len(spans))) intermediates.
	var temps []string
	gen := 0
	for len(live) > fanIn {
		var next []Span
		for lo := 0; lo < len(live); lo += fanIn {
			hi := lo + fanIn
			if hi > len(live) {
				hi = len(live)
			}
			if hi-lo == 1 {
				next = append(next, live[lo])
				continue
			}
			tmp := fmt.Sprintf("%s.m%d", tmpPrefix, gen)
			gen++
			n, err := mergeTo(st, live[lo:hi], tmp)
			if err != nil {
				removeAll(st, temps)
				return nil, err
			}
			temps = append(temps, tmp)
			next = append(next, Span{Name: tmp, Lo: 0, Hi: n})
		}
		live = next
	}
	m, err := newSinglePass(st, live)
	if err != nil {
		removeAll(st, temps)
		return nil, err
	}
	m.temps = temps
	return m, nil
}

// MergePlanStats reports the multi-pass reduction NewMerger would perform
// for the given span lengths and fan-in without running it: the number of
// intermediate runs written and the records passing through them.  Callers
// use it to account scratch traffic and price the extra passes — the plan
// is a pure function of the lengths, so the accounting is deterministic and
// backing-independent.
func MergePlanStats(lens []int64, fanIn int) (runs int, records int64) {
	if fanIn < 2 {
		fanIn = DefaultFanIn
	}
	var live []int64
	for _, n := range lens {
		if n > 0 {
			live = append(live, n)
		}
	}
	for len(live) > fanIn {
		var next []int64
		for lo := 0; lo < len(live); lo += fanIn {
			hi := lo + fanIn
			if hi > len(live) {
				hi = len(live)
			}
			if hi-lo == 1 {
				next = append(next, live[lo])
				continue
			}
			var sum int64
			for _, n := range live[lo:hi] {
				sum += n
			}
			runs++
			records += sum
			next = append(next, sum)
		}
		live = next
	}
	return runs, records
}

// newSinglePass opens one stream per span and plays the initial tournament;
// the caller guarantees the span count fits one pass.
func newSinglePass(st Store, spans []Span) (*Merger, error) {
	m := &Merger{st: st}
	for _, s := range spans {
		if s.Len() == 0 {
			continue
		}
		str, err := newSpanStream(st, s)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.streams = append(m.streams, str)
		m.total += s.Len()
	}
	k := len(m.streams)
	if k > 0 {
		m.tree = make([]int, k)
		for i := range m.tree {
			m.tree[i] = -1
		}
		for w := k - 1; w >= 0; w-- {
			m.replay(w)
		}
	}
	return m, nil
}

// Total returns the record count the merge will deliver.
func (m *Merger) Total() int64 { return m.total }

// Next returns the next record of the ascending merge; ok is false once the
// merge is drained.
func (m *Merger) Next() (xmath.U128, bool, error) {
	if len(m.streams) == 0 {
		return xmath.U128{}, false, nil
	}
	w := m.tree[0]
	s := m.streams[w]
	if s.done {
		return xmath.U128{}, false, nil
	}
	rec := s.cur
	if err := s.advance(); err != nil {
		return xmath.U128{}, false, err
	}
	m.replay(w)
	return rec, true, nil
}

// Close releases every open stream and removes the intermediate runs.
func (m *Merger) Close() error {
	var first error
	for _, s := range m.streams {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	m.streams = nil
	first = firstErr(first, removeAll(m.st, m.temps))
	m.temps = nil
	return first
}

// beats reports whether stream a wins against stream b: the smaller current
// record, the lower stream index breaking ties; drained streams always lose.
func (m *Merger) beats(a, b int) bool {
	sa, sb := m.streams[a], m.streams[b]
	switch {
	case sa.done:
		return false
	case sb.done:
		return true
	}
	if c := sa.cur.Cmp(sb.cur); c != 0 {
		return c < 0
	}
	return a < b
}

// replay re-runs stream w's leaf-to-root path: each inner node keeps the
// loser of the match played there and sends the winner up; tree[0] ends as
// the overall winner.  During the initial tournament an empty node (-1)
// parks the first arrival from its subtree and waits for the second, so
// every node plays exactly one match per build — the classic loser-tree
// construction, valid for any stream count.
func (m *Merger) replay(w int) {
	k := len(m.streams)
	for node := (k + w) / 2; node > 0; node /= 2 {
		if m.tree[node] == -1 {
			m.tree[node] = w
			return
		}
		if m.beats(m.tree[node], w) {
			m.tree[node], w = w, m.tree[node]
		}
	}
	m.tree[0] = w
}

// mergeTo merges spans (at most one pass's worth) into a new sealed run and
// returns its record count.
func mergeTo(st Store, spans []Span, out string) (int64, error) {
	sub, err := newSinglePass(st, spans)
	if err != nil {
		return 0, err
	}
	defer sub.Close()
	w, err := st.Create(out)
	if err != nil {
		return 0, err
	}
	var n int64
	buf := make([]xmath.U128, 0, streamBuf)
	for {
		rec, ok, err := sub.Next()
		if err != nil {
			w.Close()
			return 0, err
		}
		if !ok {
			break
		}
		buf = append(buf, rec)
		n++
		if len(buf) == cap(buf) {
			if err := w.Append(buf); err != nil {
				w.Close()
				return 0, err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := w.Append(buf); err != nil {
			w.Close()
			return 0, err
		}
	}
	return n, w.Close()
}

// MergeSpans merges sorted spans into the sealed run out with the given
// fan-in and returns its record count.
func MergeSpans(st Store, spans []Span, out string, fanIn int) (int64, error) {
	m, err := NewMerger(st, spans, fanIn, out+".tmp")
	if err != nil {
		return 0, err
	}
	defer m.Close()
	w, err := st.Create(out)
	if err != nil {
		return 0, err
	}
	var n int64
	buf := make([]xmath.U128, 0, streamBuf)
	for {
		rec, ok, err := m.Next()
		if err != nil {
			w.Close()
			return 0, err
		}
		if !ok {
			break
		}
		buf = append(buf, rec)
		n++
		if len(buf) == cap(buf) {
			if err := w.Append(buf); err != nil {
				w.Close()
				return 0, err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := w.Append(buf); err != nil {
			w.Close()
			return 0, err
		}
	}
	return n, w.Close()
}

func removeAll(st Store, names []string) error {
	var first error
	for _, n := range names {
		first = firstErr(first, st.Remove(n))
	}
	return first
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// spanStream is one leaf of the loser tree: a buffered sequential cursor
// over a span.
type spanStream struct {
	span Span
	rdr  Reader
	buf  []xmath.U128
	idx  int
	fill int
	left int64
	cur  xmath.U128
	done bool
}

// streamBuf is the per-stream read batch: fanIn * streamBuf records bound
// the merge's resident working set.
const streamBuf = 4096

func newSpanStream(st Store, s Span) (*spanStream, error) {
	rdr, err := st.Open(s.Name)
	if err != nil {
		return nil, err
	}
	if s.Lo > 0 {
		if err := rdr.SeekRecord(s.Lo); err != nil {
			rdr.Close()
			return nil, err
		}
	}
	str := &spanStream{span: s, rdr: rdr, buf: make([]xmath.U128, streamBuf), left: s.Len()}
	if err := str.advance(); err != nil {
		rdr.Close()
		return nil, err
	}
	return str, nil
}

func (s *spanStream) advance() error {
	if s.idx >= s.fill {
		if s.left == 0 {
			s.done = true
			return nil
		}
		want := int64(len(s.buf))
		if want > s.left {
			want = s.left
		}
		n, err := s.rdr.Read(s.buf[:want])
		if err != nil && err != io.EOF {
			return err
		}
		if int64(n) < want {
			return fmt.Errorf("%w: span %q[%d:%d) ended %d records early",
				ErrCorrupt, s.span.Name, s.span.Lo, s.span.Hi, s.left-int64(n))
		}
		s.idx, s.fill = 0, n
		s.left -= int64(n)
	}
	s.cur = s.buf[s.idx]
	s.idx++
	return nil
}

func (s *spanStream) close() error {
	if s.rdr == nil {
		return nil
	}
	err := s.rdr.Close()
	s.rdr = nil
	return err
}
