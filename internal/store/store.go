// Package store is the out-of-core storage plane: named, ordered runs of
// fixed-width key records behind a small Store interface with in-memory and
// filesystem implementations — the DistribArray shape (a named array of
// ordered partitions with interchangeable memory/filesystem backings)
// adapted to the sort's needs.
//
// A run is an immutable, ordered sequence of 16-byte records: the
// order-preserving 128-bit key images of keys.Ops.ToBits.  Because the
// embedding is an order isomorphism, the store can search and merge runs
// without knowing the key type — two records compare as unsigned 128-bit
// integers, and equal images decode to indistinguishable keys, which is what
// makes the external merge bit-identical to the in-memory one.
//
// Runs are write-once: Create a Writer, Append records in order, Close to
// seal.  The filesystem backing writes chunked buffered files with a
// checksummed footer (magic, record width, count, FNV-1a over the data
// bytes); truncation is detected when a run is opened, bit flips when a
// sequential read drains it.  The memory backing holds the same runs in a
// map, so the two backings are interchangeable — the chaos oracle's storage
// axis asserts bit-identical sort output and virtual makespan across them.
package store

import (
	"errors"
	"fmt"
	"strings"

	"dhsort/internal/xmath"
)

// RecordBytes is the wire width of one run record: a 128-bit key image.
const RecordBytes = 16

// ErrCorrupt marks a run whose stored bytes cannot be trusted: a size that
// disagrees with the footer's record count (truncation), a bad magic or
// record width, or an FNV checksum mismatch at the end of a sequential read.
var ErrCorrupt = errors.New("store: run corrupt")

// ErrNotFound marks a run name with no sealed run behind it.
var ErrNotFound = errors.New("store: run not found")

// Store is a flat namespace of sealed runs.  Implementations must be safe
// for concurrent use by multiple ranks as long as distinct ranks use
// distinct run names (the sort's naming convention keys every run by world
// rank); concurrent readers of one sealed run are always safe.
type Store interface {
	// Create opens a new run for writing, truncating any sealed run of the
	// same name.  The run is invisible to Open/Len until the Writer is
	// closed.
	Create(name string) (Writer, error)
	// Open returns a sequential reader positioned at record 0.  Opening
	// validates the run's integrity envelope (footer, truncation).
	Open(name string) (Reader, error)
	// Len returns the record count of a sealed run.
	Len(name string) (int64, error)
	// Remove deletes a sealed run; removing a missing run is not an error.
	Remove(name string) error
}

// Writer appends records to an open run.  Append keeps input order; Close
// seals the run (filesystem backing: flushes buffers and writes the
// checksummed footer).
type Writer interface {
	Append(recs []xmath.U128) error
	Close() error
}

// Reader reads records from a sealed run.  Read fills dst and returns the
// count read; it returns io.EOF once the run is drained.  A reader that has
// consumed the whole run strictly sequentially from record 0 verifies the
// data checksum as the last record is delivered and surfaces ErrCorrupt on
// a mismatch; Seek repositions the reader and (filesystem backing) waives
// the checksum for that pass, since a ranged read cannot re-derive the
// whole-run hash.
type Reader interface {
	Read(dst []xmath.U128) (int, error)
	SeekRecord(rec int64) error
	Close() error
}

// checkName rejects run names that could escape a filesystem root.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty run name")
	}
	if strings.HasPrefix(name, "/") || strings.Contains(name, "..") {
		return fmt.Errorf("store: invalid run name %q", name)
	}
	return nil
}
