package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dhsort/internal/xmath"
)

func backings(t *testing.T) map[string]Store {
	t.Helper()
	return map[string]Store{
		"mem": NewMem(),
		"fs":  NewFS(t.TempDir()),
	}
}

func u(hi, lo uint64) xmath.U128 { return xmath.U128{Hi: hi, Lo: lo} }

func writeRun(t *testing.T, st Store, name string, recs []xmath.U128) {
	t.Helper()
	w, err := st.Create(name)
	if err != nil {
		t.Fatalf("Create(%q): %v", name, err)
	}
	// Append in two chunks to exercise multi-append sealing.
	half := len(recs) / 2
	if err := w.Append(recs[:half]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append(recs[half:]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func readRun(t *testing.T, st Store, name string) []xmath.U128 {
	t.Helper()
	r, err := st.Open(name)
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	defer r.Close()
	var out []xmath.U128
	buf := make([]xmath.U128, 7) // odd size to exercise partial batches
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Read(%q): %v", name, err)
		}
	}
}

func genRecs(n int, seed int64) []xmath.U128 {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]xmath.U128, n)
	for i := range recs {
		recs[i] = u(rng.Uint64()>>32, rng.Uint64())
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	for label, st := range backings(t) {
		t.Run(label, func(t *testing.T) {
			recs := genRecs(10007, 1)
			writeRun(t, st, "part/rt", recs)
			got := readRun(t, st, "part/rt")
			if len(got) != len(recs) {
				t.Fatalf("round trip: %d records, want %d", len(got), len(recs))
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Fatalf("record %d: got %v want %v", i, got[i], recs[i])
				}
			}
			n, err := st.Len("part/rt")
			if err != nil || n != int64(len(recs)) {
				t.Fatalf("Len = %d, %v; want %d", n, err, len(recs))
			}
		})
	}
}

func TestEmptyRun(t *testing.T) {
	for label, st := range backings(t) {
		t.Run(label, func(t *testing.T) {
			w, err := st.Create("empty")
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if n, err := st.Len("empty"); err != nil || n != 0 {
				t.Fatalf("Len = %d, %v; want 0, nil", n, err)
			}
			if got := readRun(t, st, "empty"); len(got) != 0 {
				t.Fatalf("read %d records from empty run", len(got))
			}
		})
	}
}

func TestNotFoundAndInvisibleUntilSealed(t *testing.T) {
	for label, st := range backings(t) {
		t.Run(label, func(t *testing.T) {
			if _, err := st.Open("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Open(missing) = %v, want ErrNotFound", err)
			}
			if _, err := st.Len("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Len(missing) = %v, want ErrNotFound", err)
			}
			w, err := st.Create("pending")
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append([]xmath.U128{u(0, 1)}); err != nil {
				t.Fatal(err)
			}
			if label == "mem" {
				// The memory backing keeps unsealed runs fully invisible.
				if _, err := st.Open("pending"); !errors.Is(err, ErrNotFound) {
					t.Fatalf("Open before seal = %v, want ErrNotFound", err)
				}
			} else {
				// The filesystem backing has no footer yet: corrupt, not sealed.
				if _, err := st.Open("pending"); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Open before seal = %v, want ErrCorrupt", err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Open("pending"); err != nil {
				t.Fatalf("Open after seal: %v", err)
			}
			if err := st.Remove("pending"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Open("pending"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Open after Remove = %v, want ErrNotFound", err)
			}
			// Removing a missing run is not an error.
			if err := st.Remove("pending"); err != nil {
				t.Fatalf("double Remove: %v", err)
			}
		})
	}
}

func TestSeekRangedRead(t *testing.T) {
	for label, st := range backings(t) {
		t.Run(label, func(t *testing.T) {
			recs := genRecs(5000, 2)
			writeRun(t, st, "seek", recs)
			r, err := st.Open("seek")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if err := r.SeekRecord(4321); err != nil {
				t.Fatal(err)
			}
			buf := make([]xmath.U128, 100)
			n, err := r.Read(buf)
			if err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if n != 100 {
				t.Fatalf("ranged read got %d records, want 100", n)
			}
			for i := 0; i < n; i++ {
				if buf[i] != recs[4321+i] {
					t.Fatalf("record %d after seek: got %v want %v", i, buf[i], recs[4321+i])
				}
			}
			// Seek backwards and re-read from 0.
			if err := r.SeekRecord(0); err != nil {
				t.Fatal(err)
			}
			n, _ = r.Read(buf[:3])
			if n != 3 || buf[0] != recs[0] {
				t.Fatalf("re-read from 0: n=%d first=%v want %v", n, buf[0], recs[0])
			}
			if err := r.SeekRecord(int64(len(recs)) + 1); err == nil {
				t.Fatal("Seek past end succeeded")
			}
		})
	}
}

func TestInvalidNames(t *testing.T) {
	st := NewFS(t.TempDir())
	for _, name := range []string{"", "/abs", "a/../escape", ".."} {
		if _, err := st.Create(name); err == nil {
			t.Errorf("Create(%q) succeeded", name)
		}
	}
}

func TestFSTruncationDetectedAtOpen(t *testing.T) {
	dir := t.TempDir()
	st := NewFS(dir)
	writeRun(t, st, "trunc", genRecs(1000, 3))
	p := filepath.Join(dir, "trunc.run")
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p, fi.Size()-RecordBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Open("trunc"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(truncated) = %v, want ErrCorrupt", err)
	}
	if _, err := st.Len("trunc"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Len(truncated) = %v, want ErrCorrupt", err)
	}
}

func TestFSBitFlipDetectedAtReadEnd(t *testing.T) {
	dir := t.TempDir()
	st := NewFS(dir)
	writeRun(t, st, "flip", genRecs(1000, 4))
	p := filepath.Join(dir, "flip.run")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[500*RecordBytes+7] ^= 0x10 // flip one bit mid-data
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// The envelope (size/count) still agrees, so Open succeeds...
	r, err := st.Open("flip")
	if err != nil {
		t.Fatalf("Open(bit-flipped) = %v, want success (flip is caught at read end)", err)
	}
	defer r.Close()
	// ...but draining the run sequentially must surface the checksum mismatch.
	buf := make([]xmath.U128, 64)
	for {
		_, err := r.Read(buf)
		if err == io.EOF {
			t.Fatal("drained bit-flipped run without ErrCorrupt")
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Read = %v, want ErrCorrupt", err)
			}
			return
		}
	}
}

func TestFSBadMagic(t *testing.T) {
	dir := t.TempDir()
	st := NewFS(dir)
	writeRun(t, st, "magic", genRecs(10, 5))
	p := filepath.Join(dir, "magic.run")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[len(raw)-footerBytes:], 0xdeadbeef)
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Open("magic"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(bad magic) = %v, want ErrCorrupt", err)
	}
}

func TestCreateTruncatesPriorRun(t *testing.T) {
	for label, st := range backings(t) {
		t.Run(label, func(t *testing.T) {
			writeRun(t, st, "re", genRecs(100, 6))
			next := genRecs(10, 7)
			writeRun(t, st, "re", next)
			got := readRun(t, st, "re")
			if len(got) != len(next) {
				t.Fatalf("after rewrite: %d records, want %d", len(got), len(next))
			}
		})
	}
}

// sortedRecs returns n sorted records with duplicates (about n/4 distinct).
func sortedRecs(n int, seed int64) []xmath.U128 {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]xmath.U128, n)
	for i := range recs {
		recs[i] = u(uint64(rng.Intn(n/4+1)), uint64(rng.Intn(8)))
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Less(recs[j]) })
	return recs
}

func TestMergeSpans(t *testing.T) {
	for label, st := range backings(t) {
		t.Run(label, func(t *testing.T) {
			for _, tc := range []struct {
				runs, per, fanIn int
			}{
				{1, 500, 8},     // single run: pass-through
				{3, 1000, 8},    // one pass
				{8, 700, 8},     // exactly fan-in
				{9, 300, 8},     // one reduction round
				{20, 400, 2},    // binary fan-in, multiple reduction rounds
				{13, 1, 3},      // single-record runs
				{5, 0, 4},       // all empty
				{16, 12345, 16}, // wide single pass
			} {
				name := fmt.Sprintf("r%dx%df%d", tc.runs, tc.per, tc.fanIn)
				var spans []Span
				var all []xmath.U128
				for i := 0; i < tc.runs; i++ {
					recs := sortedRecs(tc.per, int64(100*i+tc.per))
					writeRun(t, st, fmt.Sprintf("%s/in%d", name, i), recs)
					spans = append(spans, Span{Name: fmt.Sprintf("%s/in%d", name, i), Lo: 0, Hi: int64(len(recs))})
					all = append(all, recs...)
				}
				sort.SliceStable(all, func(i, j int) bool { return all[i].Less(all[j]) })
				n, err := MergeSpans(st, spans, name+"/out", tc.fanIn)
				if err != nil {
					t.Fatalf("%s: MergeSpans: %v", name, err)
				}
				if n != int64(len(all)) {
					t.Fatalf("%s: merged %d records, want %d", name, n, len(all))
				}
				got := readRun(t, st, name+"/out")
				for i := range all {
					if got[i] != all[i] {
						t.Fatalf("%s: record %d: got %v want %v", name, i, got[i], all[i])
					}
				}
			}
		})
	}
}

func TestMergerSubSpansAndDeterminism(t *testing.T) {
	st := NewMem()
	base := sortedRecs(4000, 42)
	writeRun(t, st, "big", base)
	// Merge three overlapping sub-spans of one run plus a whole second run.
	other := sortedRecs(777, 43)
	writeRun(t, st, "other", other)
	spans := []Span{
		{Name: "big", Lo: 0, Hi: 1500},
		{Name: "big", Lo: 1500, Hi: 1500}, // empty, dropped
		{Name: "big", Lo: 1500, Hi: 4000},
		{Name: "other", Lo: 0, Hi: int64(len(other))},
	}
	want := append(append([]xmath.U128{}, base...), other...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].Less(want[j]) })

	drain := func() []xmath.U128 {
		m, err := NewMerger(st, spans, 0, "tmp/det")
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if m.Total() != int64(len(want)) {
			t.Fatalf("Total = %d, want %d", m.Total(), len(want))
		}
		var out []xmath.U128
		for {
			rec, ok, err := m.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, rec)
		}
		return out
	}
	a, b := drain(), drain()
	if len(a) != len(want) || len(b) != len(want) {
		t.Fatalf("drained %d/%d records, want %d", len(a), len(b), len(want))
	}
	for i := range want {
		if a[i] != want[i] || b[i] != a[i] {
			t.Fatalf("record %d: a=%v b=%v want=%v", i, a[i], b[i], want[i])
		}
	}
}

func TestMergerCleansTemps(t *testing.T) {
	dir := t.TempDir()
	st := NewFS(dir)
	var spans []Span
	for i := 0; i < 9; i++ { // forces one reduction round at fanIn 2
		recs := sortedRecs(50, int64(i))
		name := fmt.Sprintf("in%d", i)
		writeRun(t, st, name, recs)
		spans = append(spans, Span{Name: name, Lo: 0, Hi: int64(len(recs))})
	}
	if _, err := MergeSpans(st, spans, "out", 2); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if len(e.Name()) > 4 && e.Name()[:4] == "out." && e.Name() != "out.run" {
			t.Fatalf("temp run %q survived MergeSpans", e.Name())
		}
	}
}

// MergePlanStats must predict exactly the reduction NewMerger performs:
// the intermediate-run count and the records flowing through them, for
// single-pass and multi-pass shapes alike.
func TestMergePlanStats(t *testing.T) {
	cases := []struct {
		lens    []int64
		fanIn   int
		runs    int
		records int64
	}{
		{nil, 2, 0, 0},
		{[]int64{10, 20}, 2, 0, 0},                    // fits one pass
		{[]int64{10, 20, 30}, 4, 0, 0},                // fits one pass
		{[]int64{1, 2, 3}, 2, 1, 3},                   // {1,2}→3, then {3,3} final
		{[]int64{1, 1, 1, 1, 1}, 2, 3, 8},             // 5→[2,2,1] (2 temps, 4 recs) →[4,1] (1 temp, 4 recs)
		{[]int64{5, 0, 5, 0, 5}, 2, 1, 10},            // zero-length spans drop out
		{[]int64{1, 1, 1, 1, 1, 1, 1, 1, 1}, 0, 1, 8}, // fanIn<2 takes DefaultFanIn=8
	}
	for _, c := range cases {
		runs, records := MergePlanStats(c.lens, c.fanIn)
		if runs != c.runs || records != c.records {
			t.Errorf("MergePlanStats(%v, %d) = (%d, %d), want (%d, %d)",
				c.lens, c.fanIn, runs, records, c.runs, c.records)
		}
	}

	// Against the real Merger: 9 runs at fan-in 2 — the plan's intermediate
	// count must match the temps NewMerger actually writes.
	st := NewMem()
	var spans []Span
	var lens []int64
	for i := 0; i < 9; i++ {
		recs := sortedRecs(50, int64(100+i))
		name := fmt.Sprintf("pl%d", i)
		writeRun(t, st, name, recs)
		spans = append(spans, Span{Name: name, Lo: 0, Hi: int64(len(recs))})
		lens = append(lens, int64(len(recs)))
	}
	m, err := NewMerger(st, spans, 2, "plan")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	runs, records := MergePlanStats(lens, 2)
	if runs != len(m.temps) {
		t.Errorf("MergePlanStats predicts %d intermediate runs, Merger wrote %d", runs, len(m.temps))
	}
	var tempRecs int64
	for _, tmp := range m.temps {
		n, err := st.Len(tmp)
		if err != nil {
			t.Fatal(err)
		}
		tempRecs += n
	}
	if records != tempRecs {
		t.Errorf("MergePlanStats predicts %d intermediate records, Merger wrote %d", records, tempRecs)
	}
}

func TestMergeDetectsEarlyEOF(t *testing.T) {
	st := NewMem()
	recs := sortedRecs(100, 9)
	writeRun(t, st, "short", recs)
	// Span claims more records than the run holds.
	_, err := MergeSpans(st, []Span{{Name: "short", Lo: 0, Hi: 200}}, "out", 4)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("MergeSpans(over-long span) = %v, want ErrCorrupt", err)
	}
}
