package store

import (
	"fmt"
	"io"
	"sync"

	"dhsort/internal/xmath"
)

// Mem is the in-memory Store: sealed runs live in a map, shared by every
// rank of the collective that holds the same *Mem.  It backs budget-bounded
// execution without a scratch directory and is the memory side of the chaos
// oracle's storage axis.
type Mem struct {
	mu   sync.Mutex
	runs map[string][]xmath.U128
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{runs: make(map[string][]xmath.U128)}
}

// Create opens a new in-memory run.
func (m *Mem) Create(name string) (Writer, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	return &memWriter{m: m, name: name}, nil
}

// Open returns a reader over a sealed run.
func (m *Mem) Open(name string) (Reader, error) {
	m.mu.Lock()
	recs, ok := m.runs[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &memReader{recs: recs}, nil
}

// Len returns a sealed run's record count.
func (m *Mem) Len(name string) (int64, error) {
	m.mu.Lock()
	recs, ok := m.runs[name]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return int64(len(recs)), nil
}

// Remove deletes a sealed run.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	delete(m.runs, name)
	m.mu.Unlock()
	return nil
}

type memWriter struct {
	m      *Mem
	name   string
	recs   []xmath.U128
	closed bool
}

func (w *memWriter) Append(recs []xmath.U128) error {
	if w.closed {
		return fmt.Errorf("store: append to closed run %q", w.name)
	}
	w.recs = append(w.recs, recs...)
	return nil
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.m.mu.Lock()
	w.m.runs[w.name] = w.recs
	w.m.mu.Unlock()
	return nil
}

type memReader struct {
	recs []xmath.U128
	pos  int64
}

func (r *memReader) Read(dst []xmath.U128) (int, error) {
	if r.pos >= int64(len(r.recs)) {
		return 0, io.EOF
	}
	n := copy(dst, r.recs[r.pos:])
	r.pos += int64(n)
	return n, nil
}

func (r *memReader) SeekRecord(rec int64) error {
	if rec < 0 || rec > int64(len(r.recs)) {
		return fmt.Errorf("store: seek to record %d of %d", rec, len(r.recs))
	}
	r.pos = rec
	return nil
}

func (r *memReader) Close() error { return nil }
