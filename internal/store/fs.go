package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dhsort/internal/xmath"
)

// FS is the filesystem Store: one file per run under a root directory, with
// chunked buffered sequential I/O and a checksummed footer.  An FS value is
// just the root path — every rank of a collective can hold its own FS over
// the same directory and observe the same runs, which is what makes
// checkpoint shards durable across rank deaths.
type FS struct {
	root string
}

// NewFS returns a store rooted at dir.  The directory is created lazily on
// the first Create.
func NewFS(dir string) *FS { return &FS{root: dir} }

// Root returns the scratch directory the store writes under.
func (f *FS) Root() string { return f.root }

// Run file layout: count records of RecordBytes (Lo then Hi, little-endian)
// followed by a fixed footer.  The footer makes truncation detectable at
// Open (file size must equal footerBytes + count*RecordBytes) and bit flips
// detectable at the end of a sequential read (FNV-1a over the data bytes).
const (
	fsMagic     = 0x44485331 // "DHS1"
	footerBytes = 24
)

// writeBuf is the Writer/Reader buffer size: large enough that run I/O is
// chunked sequential writes, small enough to stay within any sane budget.
const writeBuf = 64 << 10

func (f *FS) path(name string) string {
	return filepath.Join(f.root, filepath.FromSlash(name)+".run")
}

// Create opens a new run file, truncating any previous run of that name.
func (f *FS) Create(name string) (Writer, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	p := f.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	file, err := os.Create(p)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &fsWriter{f: file, bw: bufio.NewWriterSize(file, writeBuf), sum: fnvOffset}, nil
}

// Open validates the run's integrity envelope and returns a sequential
// reader at record 0.
func (f *FS) Open(name string) (Reader, error) {
	file, count, err := f.open(name)
	if err != nil {
		return nil, err
	}
	return &fsReader{
		f: file, count: count,
		br:        bufio.NewReaderSize(file, writeBuf),
		sum:       fnvOffset,
		hashValid: true,
	}, nil
}

// Len returns the record count of a sealed run, validating the envelope.
func (f *FS) Len(name string) (int64, error) {
	file, count, err := f.open(name)
	if err != nil {
		return 0, err
	}
	file.Close()
	return count, nil
}

// Remove deletes a run file.
func (f *FS) Remove(name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	err := os.Remove(f.path(name))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// open opens the run file and audits the footer envelope: magic, record
// width, and the size/count agreement that catches truncated runs.
func (f *FS) open(name string) (*os.File, int64, error) {
	if err := checkName(name); err != nil {
		return nil, 0, err
	}
	file, err := os.Open(f.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	st, err := file.Stat()
	if err != nil {
		file.Close()
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	if st.Size() < footerBytes {
		file.Close()
		return nil, 0, fmt.Errorf("%w: %q is %d bytes, shorter than the footer", ErrCorrupt, name, st.Size())
	}
	var foot [footerBytes]byte
	if _, err := file.ReadAt(foot[:], st.Size()-footerBytes); err != nil {
		file.Close()
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	magic := binary.LittleEndian.Uint32(foot[0:4])
	width := binary.LittleEndian.Uint32(foot[4:8])
	count := int64(binary.LittleEndian.Uint64(foot[8:16]))
	if magic != fsMagic || width != RecordBytes {
		file.Close()
		return nil, 0, fmt.Errorf("%w: %q has magic %#x width %d", ErrCorrupt, name, magic, width)
	}
	if count < 0 || st.Size() != footerBytes+count*RecordBytes {
		file.Close()
		return nil, 0, fmt.Errorf("%w: %q holds %d bytes for %d records (truncated?)", ErrCorrupt, name, st.Size(), count)
	}
	if _, err := file.Seek(0, io.SeekStart); err != nil {
		file.Close()
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	return file, count, nil
}

// FNV-1a, folded incrementally over the record bytes.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvFold(sum uint64, b []byte) uint64 {
	for _, v := range b {
		sum ^= uint64(v)
		sum *= fnvPrime
	}
	return sum
}

type fsWriter struct {
	f      *os.File
	bw     *bufio.Writer
	count  int64
	sum    uint64
	closed bool
}

func (w *fsWriter) Append(recs []xmath.U128) error {
	if w.closed {
		return fmt.Errorf("store: append to closed run")
	}
	var buf [RecordBytes]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint64(buf[0:8], r.Lo)
		binary.LittleEndian.PutUint64(buf[8:16], r.Hi)
		if _, err := w.bw.Write(buf[:]); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		w.sum = fnvFold(w.sum, buf[:])
	}
	w.count += int64(len(recs))
	return nil
}

func (w *fsWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var foot [footerBytes]byte
	binary.LittleEndian.PutUint32(foot[0:4], fsMagic)
	binary.LittleEndian.PutUint32(foot[4:8], RecordBytes)
	binary.LittleEndian.PutUint64(foot[8:16], uint64(w.count))
	binary.LittleEndian.PutUint64(foot[16:24], w.sum)
	if _, err := w.bw.Write(foot[:]); err != nil {
		w.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

type fsReader struct {
	f     *os.File
	br    *bufio.Reader
	count int64
	pos   int64

	// sum accumulates FNV-1a while the read stays strictly sequential from
	// record 0; the footer's checksum is audited as the last record is
	// delivered.  Seek waives the audit for that pass.
	sum       uint64
	hashValid bool
}

func (r *fsReader) Read(dst []xmath.U128) (int, error) {
	if r.pos >= r.count {
		return 0, io.EOF
	}
	n := int64(len(dst))
	if rem := r.count - r.pos; n > rem {
		n = rem
	}
	var buf [RecordBytes]byte
	for i := int64(0); i < n; i++ {
		if _, err := io.ReadFull(r.br, buf[:]); err != nil {
			return int(i), fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if r.hashValid {
			r.sum = fnvFold(r.sum, buf[:])
		}
		dst[i] = xmath.U128{
			Lo: binary.LittleEndian.Uint64(buf[0:8]),
			Hi: binary.LittleEndian.Uint64(buf[8:16]),
		}
	}
	r.pos += n
	if r.pos == r.count && r.hashValid {
		var foot [footerBytes]byte
		if _, err := io.ReadFull(r.br, foot[:]); err != nil {
			return int(n), fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if want := binary.LittleEndian.Uint64(foot[16:24]); want != r.sum {
			return int(n), fmt.Errorf("%w: data checksum %#x, footer says %#x", ErrCorrupt, r.sum, want)
		}
	}
	return int(n), nil
}

func (r *fsReader) SeekRecord(rec int64) error {
	if rec < 0 || rec > r.count {
		return fmt.Errorf("store: seek to record %d of %d", rec, r.count)
	}
	if rec == r.pos {
		return nil
	}
	if _, err := r.f.Seek(rec*RecordBytes, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	r.br.Reset(r.f)
	r.pos = rec
	r.hashValid = false
	return nil
}

func (r *fsReader) Close() error { return r.f.Close() }
