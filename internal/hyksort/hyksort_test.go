package hyksort

import (
	"sort"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

var u64 = keys.Uint64{}

func runIt(t *testing.T, p, perRank int, spec workload.Spec, cfg Config, model *simnet.CostModel) (ins, outs [][]uint64) {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	ins = make([][]uint64, p)
	outs = make([][]uint64, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		out, err := Sort(c, local, u64, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ins, outs
}

func checkOutput(t *testing.T, ins, outs [][]uint64) {
	t.Helper()
	var all, got []uint64
	for _, in := range ins {
		all = append(all, in...)
	}
	var prev uint64
	first := true
	for r, out := range outs {
		for i, v := range out {
			if !first && v < prev {
				t.Fatalf("order violated at rank %d index %d", r, i)
			}
			prev, first = v, false
		}
		got = append(got, out...)
	}
	if len(got) != len(all) {
		t.Fatalf("count changed: %d -> %d", len(all), len(got))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("not a permutation at %d", i)
		}
	}
}

func TestHykSortVariousSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		spec := workload.Spec{Dist: workload.Uniform, Seed: uint64(p) + 40, Span: 1e9}
		ins, outs := runIt(t, p, 400, spec, Config{}, nil)
		checkOutput(t, ins, outs)
	}
}

func TestHykSortArities(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		spec := workload.Spec{Dist: workload.Normal, Seed: uint64(k), Span: 1e9}
		ins, outs := runIt(t, 12, 350, spec, Config{K: k}, nil)
		checkOutput(t, ins, outs)
	}
}

func TestHykSortSkewedAndDuplicates(t *testing.T) {
	for _, d := range []workload.Distribution{workload.Zipf, workload.DuplicateHeavy, workload.AllEqual} {
		spec := workload.Spec{Dist: d, Seed: 50, Span: 1e9}
		ins, outs := runIt(t, 9, 300, spec, Config{K: 3}, nil)
		checkOutput(t, ins, outs)
	}
}

func TestHykSortSparse(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 51, Span: 1e9, Sparse: 2}
	ins, outs := runIt(t, 8, 250, spec, Config{}, nil)
	checkOutput(t, ins, outs)
}

func TestHykSortUnderCostModel(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 52, Span: 1e9}
	ins, outs := runIt(t, 16, 200, spec, Config{}, model)
	checkOutput(t, ins, outs)
	// The recursion must have produced some load; balance is approximate
	// (subgroup shares are exact, within-subgroup placement is not).
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total != 16*200 {
		t.Fatal("element count mismatch")
	}
}

func TestHykSortBalanceWithinFactor(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 53, Span: 1e9}
	_, outs := runIt(t, 16, 1000, spec, Config{K: 4}, nil)
	maxN := 0
	for _, o := range outs {
		if len(o) > maxN {
			maxN = len(o)
		}
	}
	// HykSort's balance is looser than histogram sort's but must stay
	// within a small constant factor on uniform data.
	if maxN > 4*1000 {
		t.Errorf("worst-rank load %d exceeds 4x the average", maxN)
	}
}
