// Package hyksort implements a HykSort-style distributed sort (Sundar,
// Malhotra, Biros [20], discussed in §III-C): a generalization of hypercube
// quicksort that picks k-1 splitters per round, exchanges data among k
// process groups, and recurses on each group after an MPI communicator
// split.
//
// The paper's algorithm deliberately avoids this structure: "this comes
// along with a communicator split each iteration in the recursion tree.  In
// MPI this operation takes linear complexity to the communicator size and
// is a blocking collective operation among all processors" (§III-C).  This
// implementation exists to benchmark exactly that trade-off: every
// recursion level pays a Split on the live communicator.
package hyksort

import (
	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/sortutil"
)

// Config tunes a HykSort run.
type Config struct {
	// K is the split arity per round (the k of [20]); 0 means 4.  Each
	// round partitions the group into min(K, group size) subgroups.
	K int
	// ForceUnique applies the duplicate-key transformation (see
	// core.Config.ForceUnique); off by default.
	ForceUnique bool
	// VirtualScale prices bulk data at a multiple of its real size.
	VirtualScale float64
	// Recorder receives phase timings.
	Recorder *metrics.Recorder
}

func (cfg Config) arity() int {
	if cfg.K < 2 {
		return 4
	}
	return cfg.K
}

func (cfg Config) scale() float64 {
	if cfg.VirtualScale < 1 {
		return 1
	}
	return cfg.VirtualScale
}

// Sort sorts the distributed sequence collectively and returns this rank's
// partition.  Balance is approximate: each recursion level assigns each
// subgroup its exact share of the remaining keys, but within a subgroup the
// per-rank distribution follows the exchange pattern rather than the input
// capacities.
func Sort[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	if !cfg.ForceUnique {
		return sortImpl[K](c, local, ops, cfg)
	}
	triples := keys.MakeUnique(local, c.Rank())
	out, err := sortImpl[keys.Triple[K]](c, triples, keys.NewTripleOps(ops), cfg)
	if err != nil {
		return nil, err
	}
	return keys.StripUnique(out), nil
}

func sortImpl[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	model := c.Model()
	rec := cfg.Recorder
	scale := cfg.scale()

	rec.Enter(metrics.LocalSort)
	sorted := make([]K, len(local))
	copy(sorted, local)
	sortutil.Sort(sorted, ops.Less)
	if model != nil {
		c.Clock().Advance(model.SortCost(int(float64(len(sorted)) * scale)))
	}

	group := c
	for group.Size() > 1 {
		p := group.Size()
		k := cfg.arity()
		if k > p {
			k = p
		}
		// Subgroup g spans group ranks [gStart(g), gStart(g+1)); sizes as
		// equal as possible.
		gSize := func(g int) int { return p/k + boolToInt(g < p%k) }
		gStart := make([]int, k+1)
		for g := 0; g < k; g++ {
			gStart[g+1] = gStart[g] + gSize(g)
		}

		// Determine k-1 splitters targeting each subgroup's share of the
		// current keys (HykSort uses sampled histogram probes; the exact
		// bisection keeps this baseline's balance honest so the
		// benchmark isolates the communicator-split cost).
		rec.Enter(metrics.Histogram)
		counts := comm.AllgatherOne(group, int64(len(sorted)))
		var total int64
		for _, n := range counts {
			total += n
		}
		targets := make([]int64, k-1)
		for g := 0; g < k-1; g++ {
			targets[g] = total * int64(gStart[g+1]) / int64(p)
		}
		splitters, _ := core.FindSplitters(group, sorted, ops, targets, 0, core.Config{Recorder: rec})

		// Bucketize and exchange: bucket g goes to the member of
		// subgroup g with our intra-subgroup offset (wrapped).
		rec.Enter(metrics.Exchange)
		sendCounts := make([]int, p)
		prev := 0
		for g := 0; g < k; g++ {
			var cut int
			if g == k-1 {
				cut = len(sorted)
			} else {
				cut = sortutil.UpperBound(sorted, splitters[g], ops.Less)
				if cut < prev {
					cut = prev
				}
			}
			peer := gStart[g] + (group.Rank() % gSize(g))
			sendCounts[peer] += cut - prev
			prev = cut
		}
		if model != nil {
			c.Clock().Advance(model.SearchCost(len(sorted), k-1))
		}
		recv, recvCounts := comm.Alltoallv(group, sorted, sendCounts, scale)

		// Merge received runs to keep the invariant "local data sorted".
		rec.Enter(metrics.Merge)
		runs := make([][]K, 0, len(recvCounts))
		off := 0
		for _, n := range recvCounts {
			if n > 0 {
				runs = append(runs, recv[off:off+n])
			}
			off += n
		}
		sorted = sortutil.MergeKLoser(runs, ops.Less)
		if model != nil {
			c.Clock().Advance(model.MergeCost(int(float64(len(sorted))*scale), len(runs)))
		}

		// Recurse into this rank's subgroup — the communicator split the
		// paper's design avoids.
		rec.Enter(metrics.Other)
		myGroup := 0
		for g := 0; g < k; g++ {
			if group.Rank() >= gStart[g] && group.Rank() < gStart[g+1] {
				myGroup = g
			}
		}
		group = group.Split(myGroup, group.Rank())
	}
	rec.Finish()
	return sorted, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
