package metrics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"dhsort/internal/simnet"
)

// faultStat builds a fully populated fault block scaled by f, with the
// gated time metrics comfortably above the compare noise floors.
func faultStat(f float64) *FaultStat {
	ns := func(base int64) int64 { return int64(float64(base) * f) }
	return &FaultStat{
		Drops: 40, Dups: 12, Delays: 80, Reorders: 9,
		Retries: 40, RetryNS: ns(2_000_000), DedupHits: 12,
		Checkpoints: 48, CheckpointBytes: 1 << 20,
		Recoveries: 2, RecoveryNS: ns(5_000_000),
		Stalls: 1, StallNS: 200_000,
	}
}

// TestFaultFreeDocumentOmitsFaultKeys pins the additive-schema guarantee:
// a fault-free document serializes without any "fault" key, in the config
// or in any record, so pre-existing baselines stay byte-identical.
func TestFaultFreeDocumentOmitsFaultKeys(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, baselineDoc(1.0)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"fault"`) {
		t.Error("fault-free document carries a fault key")
	}

	// The Summary→Record path must agree: no fault activity, nil pointer.
	rec := NewRecord("dhsort", 16, 4096, "uniform", []time.Duration{time.Millisecond}, Summary{})
	if rec.Fault != nil {
		t.Errorf("fault-free summary produced a fault block: %+v", rec.Fault)
	}
}

// TestFaultRecordRoundTrip pins the serialized fault block: a record with
// fault activity encodes the block, decodes back equal, and a summary with
// fault tallies materializes the pointer.
func TestFaultRecordRoundTrip(t *testing.T) {
	doc := baselineDoc(1.0)
	doc.Config.Fault = "drop=0.01,seed=7"
	doc.Records[0].Fault = faultStat(1.0)

	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"fault"`) {
		t.Fatal("fault block not serialized")
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config.Fault != doc.Config.Fault {
		t.Errorf("config fault spec round-tripped to %q", back.Config.Fault)
	}
	if !reflect.DeepEqual(back.Records[0].Fault, doc.Records[0].Fault) {
		t.Errorf("fault block round-tripped to %+v", back.Records[0].Fault)
	}

	s := Summary{Fault: FaultTally{Retries: 40, RetryNS: 2_000_000, Recoveries: 2}}
	rec := NewRecord("dhsort", 16, 4096, "uniform", []time.Duration{time.Millisecond}, s)
	if rec.Fault == nil || rec.Fault.Retries != 40 || rec.Fault.Recoveries != 2 {
		t.Errorf("summary fault tallies lost: %+v", rec.Fault)
	}
}

// TestCompareIgnoresFaultWithoutBaseline pins the gate's additive rule: a
// baseline written before the fault fields existed (or from a fault-free
// run) must never be gated on them, even when the new document carries a
// large fault block.
func TestCompareIgnoresFaultWithoutBaseline(t *testing.T) {
	old := baselineDoc(1.0)
	new := baselineDoc(1.0)
	new.Records[0].Fault = faultStat(10.0)
	res, err := Compare(old, new, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Deltas {
		if strings.HasPrefix(d.Metric, "fault.") {
			t.Errorf("baseline without a fault block produced delta %s", d.Metric)
		}
	}
	if res.Regressed() {
		t.Error("additive fault block tripped the gate on an old baseline")
	}
}

// TestCompareGatesFaultTime pins the other side: once both documents carry
// the block, inflated retry/recovery time is a regression like any other
// tracked time metric.
func TestCompareGatesFaultTime(t *testing.T) {
	old := baselineDoc(1.0)
	old.Records[0].Fault = faultStat(1.0)

	same := baselineDoc(1.0)
	same.Records[0].Fault = faultStat(1.0)
	res, err := Compare(old, same, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() {
		t.Error("identical fault blocks tripped the gate")
	}

	slow := baselineDoc(1.0)
	slow.Records[0].Fault = faultStat(1.5)
	res, err = Compare(old, slow, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	var hit []string
	for _, d := range res.Deltas {
		if d.Regressed {
			hit = append(hit, d.Metric)
		}
	}
	joined := strings.Join(hit, " ")
	for _, want := range []string{"fault.retry_ns", "fault.recovery_ns"} {
		if !strings.Contains(joined, want) {
			t.Errorf("expected %s among regressed metrics, got %v", want, hit)
		}
	}
}

// TestRecorderFaultSpanCap mirrors the trace-side cap on the metrics
// recorder, and checks Summarize counts stored and dropped spans alike.
func TestRecorderFaultSpanCap(t *testing.T) {
	clk := simnet.NewClock(simnet.SuperMUC(16, true))
	r := NewRecorder(clk, nil)
	for i := 0; i < maxFaultSpans+50; i++ {
		r.AddFaultSpan("inject", "flood", 0)
	}
	if len(r.FaultSpans) != maxFaultSpans {
		t.Errorf("span list grew to %d, cap is %d", len(r.FaultSpans), maxFaultSpans)
	}
	if r.FaultSpansDropped != 50 {
		t.Errorf("overflow count %d, want 50", r.FaultSpansDropped)
	}
	if s := Summarize([]*Recorder{r}); s.FaultEvents != maxFaultSpans+50 {
		t.Errorf("summary counts %d fault events, want %d", s.FaultEvents, maxFaultSpans+50)
	}
}
