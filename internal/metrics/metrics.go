// Package metrics is the repo's observability layer: it captures per-rank,
// per-superstep timings together with communication volume by link class,
// aggregates them across ranks (including load-imbalance factors), and
// defines the stable, versioned JSON schema the bench binary emits — the
// machine-readable counterpart to the per-phase breakdowns the paper's
// evaluation (Figs. 2-4) is built from.
//
// The Recorder supersedes trace.Recorder: it keeps the same nil-safe phase
// API every algorithm threads through its Config, and additionally diffs
// the rank's comm.Stats accumulator at every phase boundary, so message
// counts and byte volumes are attributed to the superstep that caused them.
package metrics

import (
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/fault"
	"dhsort/internal/simnet"
	"dhsort/internal/trace"
)

// Phase identifies one superstep of the sorting pipeline; the constants
// re-export the trace package's enum so algorithm code only needs one
// import.
type Phase = trace.Phase

// The phases the paper's evaluation breaks executions into.
const (
	// LocalSort is the initial local sort superstep.
	LocalSort = trace.LocalSort
	// Histogram is the splitter-determination superstep (§V-A).
	Histogram = trace.Histogram
	// Exchange is the ALL-TO-ALLV data exchange superstep (§V-B).
	Exchange = trace.Exchange
	// Merge is the local merge superstep (§V-C).
	Merge = trace.Merge
	// Other covers setup, permutation-matrix construction, and teardown.
	Other = trace.Other
	// NumPhases is the number of phases.
	NumPhases = trace.NumPhases
)

// LinkTally tallies one link class's traffic: two-sided messages and bytes,
// plus one-sided puts, put volume and notifications (internal/rma traffic,
// zero unless the run used the one-sided exchange).
type LinkTally struct {
	Messages int64
	Bytes    int64
	Puts     int64
	PutBytes int64
	Notifies int64
}

// add accumulates o into t.
func (t *LinkTally) add(o LinkTally) {
	t.Messages += o.Messages
	t.Bytes += o.Bytes
	t.Puts += o.Puts
	t.PutBytes += o.PutBytes
	t.Notifies += o.Notifies
}

// FaultTally aggregates the fault plane's activity in one run: the faults
// the injector scheduled, the resilience work the transport did to survive
// them, and the checkpoint/recovery traffic of the supersteps.  All zero in
// fault-free runs.
type FaultTally struct {
	// Transport-level (from comm.Stats.Fault).
	Drops     int64
	Dups      int64
	Delays    int64
	Reorders  int64
	Retries   int64
	RetryNS   int64
	DedupHits int64
	// Superstep-level (recorded by the checkpoint boundaries).
	Checkpoints     int64
	CheckpointBytes int64
	Recoveries      int64
	RecoveryNS      int64
	Stalls          int64
	StallNS         int64
	// Graceful-degradation level (recorded by the shrink recovery path).
	Deaths      int64
	AgreeRounds int64
	Shrinks     int64
	ShrinkNS    int64
}

// Any reports whether the tally recorded any fault-plane activity.
func (t FaultTally) Any() bool {
	return t != FaultTally{}
}

// add accumulates o into t.
func (t *FaultTally) add(o FaultTally) {
	t.Drops += o.Drops
	t.Dups += o.Dups
	t.Delays += o.Delays
	t.Reorders += o.Reorders
	t.Retries += o.Retries
	t.RetryNS += o.RetryNS
	t.DedupHits += o.DedupHits
	t.Checkpoints += o.Checkpoints
	t.CheckpointBytes += o.CheckpointBytes
	t.Recoveries += o.Recoveries
	t.RecoveryNS += o.RecoveryNS
	t.Stalls += o.Stalls
	t.StallNS += o.StallNS
	t.Deaths += o.Deaths
	t.AgreeRounds += o.AgreeRounds
	t.Shrinks += o.Shrinks
	t.ShrinkNS += o.ShrinkNS
}

// Recorder accumulates one rank's per-phase time (against its clock, wall
// or simulated) and per-phase communication volume by link class (against
// its comm.Stats accumulator).  A nil *Recorder is valid and records
// nothing, so algorithms can run uninstrumented.  A Recorder is confined to
// its rank goroutine; aggregate with Summarize after World.Run returns.
type Recorder struct {
	clock    *simnet.Clock
	stats    *comm.Stats
	mark     time.Duration
	statMark comm.Stats
	cur      Phase

	// Times is the accumulated duration per phase.
	Times [NumPhases]time.Duration
	// Links is the communication volume per phase and link class.
	Links [NumPhases][simnet.NumLinkClasses]LinkTally
	// Iterations counts histogramming iterations (§V-A).
	Iterations int
	// Probes is the k-ary probe count per unfinished splitter per
	// iteration (0 when unrecorded — bisection runs record nothing).
	Probes int
	// WarmStart records that splitter refinement was seeded with warm
	// intervals from an earlier run.
	WarmStart bool
	// ExchangedBytes counts this rank's outgoing data-exchange volume as
	// priced by the algorithm (includes VirtualScale inflation).
	ExchangedBytes int64
	// ElementsIn and ElementsOut are the rank's partition sizes before and
	// after sorting, feeding the output-imbalance factor.
	ElementsIn, ElementsOut int
	// ExchangeAlg is the data-exchange algorithm that actually ran —
	// recorded by core.ExchangeAndMerge as the effective choice, which may
	// differ from the requested one (e.g. hierarchical silently degrades
	// to one-factor without node topology).
	ExchangeAlg string
	// LocalSortKernel names the Local Sort kernel the run dispatched to
	// ("radix", "task-merge", "introsort"; empty when not recorded).
	LocalSortKernel string
	// Threads is the intra-rank worker budget the compute kernels ran
	// with (0 when not recorded).
	Threads int
	// Fault tallies the rank's fault-plane activity (transport counters
	// folded in at phase boundaries, checkpoint/recovery recorded by the
	// superstep boundaries).  Zero in fault-free runs.
	Fault FaultTally
	// Survivors is the size of the communicator this rank finished on
	// after a shrink recovery (0 when the run never shrank).
	Survivors int
	// Rebalances counts post-merge bounded rebalance passes this rank
	// participated in (skew-proofing: shedding an output bucket that
	// exceeded the imbalance bound to its neighbors).
	Rebalances int64
	// RebalanceRounds counts neighbor-exchange rounds across those passes.
	RebalanceRounds int64
	// RebalanceBytes is the priced volume this rank moved during rebalance.
	RebalanceBytes int64
	// RebalanceNS is the virtual time this rank spent rebalancing.
	RebalanceNS int64
	// TieBreak records that splitter tie-breaking was active for the run.
	TieBreak bool
	// SpilledRuns counts the sorted runs this rank spilled to the
	// out-of-core store (local-sort chunk runs plus exchange receive runs;
	// 0 when the run stayed resident).
	SpilledRuns int64
	// SpillBytes is the record volume this rank wrote to the store.
	SpillBytes int64
	// FaultSpans is the rank's fault-event timeline (capped; see
	// trace.AddFaultSpan for the overflow rule applied here too).
	FaultSpans        []trace.FaultSpan
	FaultSpansDropped int
}

// NewRecorder returns a recorder ticking on clock and attributing the
// deltas of stats to phases, starting in Other.  stats may be nil to record
// times only.
func NewRecorder(clock *simnet.Clock, stats *comm.Stats) *Recorder {
	r := &Recorder{clock: clock, stats: stats, mark: clock.Now(), cur: Other}
	if stats != nil {
		r.statMark = *stats
	}
	return r
}

// ForComm returns a recorder bound to the rank's clock and stats
// accumulator — the standard way to instrument a rank function.  Under a
// fault-injecting world it also registers itself as the rank's fault-event
// observer, turning transport events into trace spans.
func ForComm(c *comm.Comm) *Recorder {
	r := NewRecorder(c.Clock(), c.Stats())
	if c.FaultInjector() != nil {
		c.SetFaultObserver(func(e fault.Event) {
			r.AddFaultSpan(e.Kind.String(), e.Detail, e.Dur)
		})
	}
	return r
}

// Enter closes the current phase and starts p.
func (r *Recorder) Enter(p Phase) {
	if r == nil {
		return
	}
	now := r.clock.Now()
	r.Times[r.cur] += now - r.mark
	r.mark = now
	if r.stats != nil {
		d := r.stats.Sub(r.statMark)
		for lc := 0; lc < int(simnet.NumLinkClasses); lc++ {
			r.Links[r.cur][lc].add(LinkTally{
				Messages: d.Messages[lc], Bytes: d.Bytes[lc],
				Puts: d.Puts[lc], PutBytes: d.PutBytes[lc], Notifies: d.Notifies[lc],
			})
		}
		r.Fault.add(FaultTally{
			Drops: d.Fault.Drops, Dups: d.Fault.Dups, Delays: d.Fault.Delays,
			Reorders: d.Fault.Reorders, Retries: d.Fault.Retries,
			RetryNS: d.Fault.RetryNS, DedupHits: d.Fault.Dedup,
		})
		r.statMark = *r.stats
	}
	r.cur = p
}

// Finish closes the current phase (into its accumulator) and parks the
// recorder in Other.
func (r *Recorder) Finish() {
	r.Enter(Other)
}

// AddIteration bumps the histogramming iteration counter.
func (r *Recorder) AddIteration() {
	if r != nil {
		r.Iterations++
	}
}

// SetProbes records the k-ary probe count splitter refinement ran with.
// Bisection runs (k = 1) record nothing, keeping their documents unchanged.
func (r *Recorder) SetProbes(k int) {
	if r != nil {
		r.Probes = k
	}
}

// SetWarmStart records that splitter refinement was warm-started.
func (r *Recorder) SetWarmStart() {
	if r != nil {
		r.WarmStart = true
	}
}

// AddExchangedBytes accounts outgoing exchange volume.
func (r *Recorder) AddExchangedBytes(n int64) {
	if r != nil {
		r.ExchangedBytes += n
	}
}

// SetElements records the rank's input and output partition sizes.
func (r *Recorder) SetElements(in, out int) {
	if r != nil {
		r.ElementsIn, r.ElementsOut = in, out
	}
}

// SetExchangeAlg records the effective data-exchange algorithm.
func (r *Recorder) SetExchangeAlg(alg string) {
	if r != nil {
		r.ExchangeAlg = alg
	}
}

// SetLocalSort records the Local Sort kernel the dispatch chose and the
// intra-rank thread budget the compute supersteps ran with.
func (r *Recorder) SetLocalSort(kernel string, threads int) {
	if r != nil {
		r.LocalSortKernel = kernel
		r.Threads = threads
	}
}

// AddCheckpoint accounts one superstep checkpoint of the given priced
// volume.
func (r *Recorder) AddCheckpoint(bytes int64) {
	if r != nil {
		r.Fault.Checkpoints++
		r.Fault.CheckpointBytes += bytes
	}
}

// AddRecovery accounts one crash recovery (respawn + checkpoint restore)
// that took d of virtual time.
func (r *Recorder) AddRecovery(d time.Duration) {
	if r != nil {
		r.Fault.Recoveries++
		r.Fault.RecoveryNS += int64(d)
	}
}

// AddDeath accounts this rank's own scheduled permanent death (recorded
// just before the rank leaves the computation).  A dead rank finishes on
// no communicator, so any survivor count from an earlier shrink is
// cleared.
func (r *Recorder) AddDeath() {
	if r != nil {
		r.Fault.Deaths++
		r.Survivors = 0
	}
}

// AddAgreeRounds accounts the message rounds one fault-tolerant agreement
// took on this rank.
func (r *Recorder) AddAgreeRounds(n int) {
	if r != nil {
		r.Fault.AgreeRounds += int64(n)
	}
}

// AddShrink accounts one revoke/agree/shrink recovery pass that took d of
// virtual time and left the rank on a communicator of the given size.
func (r *Recorder) AddShrink(d time.Duration, survivors int) {
	if r != nil {
		r.Fault.Shrinks++
		r.Fault.ShrinkNS += int64(d)
		r.Survivors = survivors
	}
}

// AddRebalance accounts one bounded post-merge rebalance pass that took
// rounds neighbor-exchange rounds, moved bytes of priced volume off or onto
// this rank, and cost d of virtual time.
func (r *Recorder) AddRebalance(rounds int, bytes int64, d time.Duration) {
	if r != nil {
		r.Rebalances++
		r.RebalanceRounds += int64(rounds)
		r.RebalanceBytes += bytes
		r.RebalanceNS += int64(d)
	}
}

// SetTieBreak records that the run partitioned with splitter tie-breaking.
func (r *Recorder) SetTieBreak() {
	if r != nil {
		r.TieBreak = true
	}
}

// AddSpill accounts runs sealed into the out-of-core store totalling bytes
// of record volume.
func (r *Recorder) AddSpill(runs int, bytes int64) {
	if r != nil {
		r.SpilledRuns += int64(runs)
		r.SpillBytes += bytes
	}
}

// AddStall accounts one injected rank stall of duration d.
func (r *Recorder) AddStall(d time.Duration) {
	if r != nil {
		r.Fault.Stalls++
		r.Fault.StallNS += int64(d)
	}
}

// maxFaultSpans mirrors the trace package's per-rank span cap.
const maxFaultSpans = 4096

// AddFaultSpan appends a fault event to the rank's timeline, stamped with
// the current clock and phase.
func (r *Recorder) AddFaultSpan(kind, detail string, dur time.Duration) {
	if r == nil {
		return
	}
	if len(r.FaultSpans) >= maxFaultSpans {
		r.FaultSpansDropped++
		return
	}
	r.FaultSpans = append(r.FaultSpans, trace.FaultSpan{
		Kind: kind, Phase: r.cur, At: r.clock.Now(), Dur: dur, Detail: detail,
	})
}

// Total returns the summed phase times.
func (r *Recorder) Total() time.Duration {
	var t time.Duration
	for _, d := range r.Times {
		t += d
	}
	return t
}

// Summary aggregates recorders across the ranks of one run.
type Summary struct {
	// Ranks is the number of (non-nil) recorders aggregated.
	Ranks int
	// Times is the mean per-phase duration across ranks.
	Times [NumPhases]time.Duration
	// MaxTimes is the slowest rank's duration per phase.
	MaxTimes [NumPhases]time.Duration
	// Links is the total communication volume across ranks, per phase and
	// link class.
	Links [NumPhases][simnet.NumLinkClasses]LinkTally
	// MaxIterations is the largest per-rank iteration count (iterations
	// are identical on every rank, so this is *the* iteration count).
	MaxIterations int
	// Probes is the k-ary probe count refinement ran with (identical on
	// every rank; 0 when the run did not record one — i.e. bisection).
	Probes int
	// WarmStart reports whether any rank's refinement was warm-started.
	WarmStart bool
	// ExchangedBytes is the total exchanged volume across ranks.
	ExchangedBytes int64
	// TimeImbalance is max(rank total time) / mean(rank total time) — the
	// load-imbalance factor of the run (1.0 = perfectly balanced).
	TimeImbalance float64
	// OutputImbalance is max(rank output size) / mean(rank output size):
	// 1.0 under perfect partitioning (Definition 1 with ε = 0).
	OutputImbalance float64
	// ExchangeAlg is the effective data-exchange algorithm (identical on
	// every rank; empty when the run did not record one).
	ExchangeAlg string
	// LocalSortKernel is the Local Sort kernel dispatch choice (identical
	// on every rank; empty when the run did not record one).
	LocalSortKernel string
	// Threads is the intra-rank worker budget (identical on every rank;
	// 0 when the run did not record one).
	Threads int
	// Fault is the fault-plane activity summed across ranks (zero in
	// fault-free runs).
	Fault FaultTally
	// Survivors is the size of the communicator the run finished on after
	// a shrink recovery — the max across ranks (0 when no rank shrank).
	Survivors int
	// Rebalances is the max per-rank rebalance pass count (passes are
	// collective, so this is *the* pass count of the run).
	Rebalances int64
	// RebalanceRounds is the max per-rank neighbor-round count.
	RebalanceRounds int64
	// RebalanceBytes is the total priced rebalance volume across ranks.
	RebalanceBytes int64
	// RebalanceNS is the total virtual rebalance time across ranks.
	RebalanceNS int64
	// TieBreak reports whether any rank ran with splitter tie-breaking.
	TieBreak bool
	// SpilledRuns is the total run count sealed into the out-of-core store
	// across ranks (0 when the run stayed resident).
	SpilledRuns int64
	// SpillBytes is the total record volume spilled across ranks.
	SpillBytes int64
	// FaultEvents counts the fault-event spans recorded across ranks
	// (including any dropped past the per-rank cap).
	FaultEvents int64
}

// Summarize aggregates per-rank recorders (nil entries are skipped).
func Summarize(recs []*Recorder) Summary {
	var s Summary
	var totalTime, maxTotal time.Duration
	var totalOut, maxOut int64
	for _, r := range recs {
		if r == nil {
			continue
		}
		s.Ranks++
		var rankTotal time.Duration
		for p := Phase(0); p < NumPhases; p++ {
			s.Times[p] += r.Times[p]
			rankTotal += r.Times[p]
			if r.Times[p] > s.MaxTimes[p] {
				s.MaxTimes[p] = r.Times[p]
			}
			for lc := 0; lc < int(simnet.NumLinkClasses); lc++ {
				s.Links[p][lc].add(r.Links[p][lc])
			}
		}
		totalTime += rankTotal
		if rankTotal > maxTotal {
			maxTotal = rankTotal
		}
		totalOut += int64(r.ElementsOut)
		if int64(r.ElementsOut) > maxOut {
			maxOut = int64(r.ElementsOut)
		}
		if r.Iterations > s.MaxIterations {
			s.MaxIterations = r.Iterations
		}
		if r.Probes > s.Probes {
			s.Probes = r.Probes
		}
		if r.WarmStart {
			s.WarmStart = true
		}
		s.ExchangedBytes += r.ExchangedBytes
		if s.ExchangeAlg == "" {
			s.ExchangeAlg = r.ExchangeAlg
		}
		if s.LocalSortKernel == "" {
			s.LocalSortKernel = r.LocalSortKernel
		}
		if s.Threads == 0 {
			s.Threads = r.Threads
		}
		s.Fault.add(r.Fault)
		if r.Survivors > s.Survivors {
			s.Survivors = r.Survivors
		}
		if r.Rebalances > s.Rebalances {
			s.Rebalances = r.Rebalances
		}
		if r.RebalanceRounds > s.RebalanceRounds {
			s.RebalanceRounds = r.RebalanceRounds
		}
		s.RebalanceBytes += r.RebalanceBytes
		s.RebalanceNS += r.RebalanceNS
		if r.TieBreak {
			s.TieBreak = true
		}
		s.SpilledRuns += r.SpilledRuns
		s.SpillBytes += r.SpillBytes
		s.FaultEvents += int64(len(r.FaultSpans) + r.FaultSpansDropped)
	}
	if s.Ranks > 0 {
		for p := Phase(0); p < NumPhases; p++ {
			s.Times[p] /= time.Duration(s.Ranks)
		}
		if totalTime > 0 {
			s.TimeImbalance = float64(maxTotal) * float64(s.Ranks) / float64(totalTime)
		}
		if totalOut > 0 {
			s.OutputImbalance = float64(maxOut) * float64(s.Ranks) / float64(totalOut)
		}
	}
	return s
}

// Total returns the summed mean phase times.
func (s Summary) Total() time.Duration {
	var t time.Duration
	for _, d := range s.Times {
		t += d
	}
	return t
}

// Fraction returns phase p's share of the total (0 when the total is zero).
func (s Summary) Fraction(p Phase) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	return float64(s.Times[p]) / float64(total)
}

// TotalLinks sums the per-phase link tallies into per-link-class totals.
func (s Summary) TotalLinks() [simnet.NumLinkClasses]LinkTally {
	var out [simnet.NumLinkClasses]LinkTally
	for p := Phase(0); p < NumPhases; p++ {
		for lc := 0; lc < int(simnet.NumLinkClasses); lc++ {
			out[lc].add(s.Links[p][lc])
		}
	}
	return out
}

// TotalMessages returns the message count across all phases and link classes.
func (s Summary) TotalMessages() int64 {
	var t int64
	for _, lt := range s.TotalLinks() {
		t += lt.Messages
	}
	return t
}

// TotalBytes returns the byte volume across all phases and link classes.
func (s Summary) TotalBytes() int64 {
	var t int64
	for _, lt := range s.TotalLinks() {
		t += lt.Bytes
	}
	return t
}

// NetworkBytes returns the volume that crossed node boundaries.
func (s Summary) NetworkBytes() int64 {
	return s.TotalLinks()[simnet.Network].Bytes
}
