package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// DefaultThreshold is the relative growth in a tracked metric that counts
// as a regression: 10%, the gate every perf PR must clear.
const DefaultThreshold = 0.10

// Noise floors: a metric below the floor in both documents is not gated,
// so tiny absolute wobbles on near-empty phases can't fail a build.
const (
	timeFloorNS   = 100_000 // 100µs of virtual time
	bytesFloor    = 4096
	messagesFloor = 64
)

// Delta is one tracked metric's old-vs-new comparison.
type Delta struct {
	// Record is the configuration key (Record.Key).
	Record string
	// Metric names the tracked quantity, e.g. "makespan.mean_ns" or
	// "phase.Exchange.mean_ns".
	Metric string
	// Old and New are the metric values in the respective documents.
	Old, New int64
	// Ratio is New/Old (1.0 = unchanged; +Inf when Old is zero).
	Ratio float64
	// Regressed reports whether New exceeds Old by more than the
	// comparison threshold (and the noise floor).
	Regressed bool
}

// Result is the outcome of comparing two documents.
type Result struct {
	// Deltas lists every tracked metric of every matched record, sorted by
	// (record, metric).
	Deltas []Delta
	// Missing lists record keys present in the old document but absent
	// from the new one — treated as a failure: the schema guarantees
	// coverage of all algorithms.
	Missing []string
	// Threshold is the relative growth that was gated on.
	Threshold float64
}

// Regressed reports whether any tracked metric regressed or any record
// disappeared.
func (r Result) Regressed() bool {
	if len(r.Missing) > 0 {
		return true
	}
	for _, d := range r.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// Compare diffs every tracked metric of new against old.  threshold <= 0
// selects DefaultThreshold.  Records present only in new are ignored
// (coverage may grow); records present only in old are reported as Missing.
func Compare(old, new Document, threshold float64) (Result, error) {
	if old.Schema != SchemaVersion || new.Schema != SchemaVersion {
		return Result{}, fmt.Errorf("metrics: cannot compare schemas %q and %q", old.Schema, new.Schema)
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	res := Result{Threshold: threshold}
	newByKey := make(map[string]Record, len(new.Records))
	for _, r := range new.Records {
		newByKey[r.Key()] = r
	}
	for _, o := range old.Records {
		n, ok := newByKey[o.Key()]
		if !ok {
			res.Missing = append(res.Missing, o.Key())
			continue
		}
		res.Deltas = append(res.Deltas, compareRecords(o, n, threshold)...)
	}
	sort.Slice(res.Deltas, func(i, j int) bool {
		if res.Deltas[i].Record != res.Deltas[j].Record {
			return res.Deltas[i].Record < res.Deltas[j].Record
		}
		return res.Deltas[i].Metric < res.Deltas[j].Metric
	})
	sort.Strings(res.Missing)
	return res, nil
}

// CompareSubset diffs only the records present in BOTH documents — the
// smoke-subset-aware form the CI gate uses to hold a smoke run (BENCH_ci)
// against the committed full baseline (BENCH_full).  Records of either
// document without a counterpart are ignored rather than reported Missing;
// an empty intersection is an error, because a gate that compares nothing
// would silently pass.
func CompareSubset(old, new Document, threshold float64) (Result, error) {
	oldByKey := make(map[string]bool, len(old.Records))
	for _, r := range old.Records {
		oldByKey[r.Key()] = true
	}
	var both []Record
	for _, r := range new.Records {
		if oldByKey[r.Key()] {
			both = append(both, r)
		}
	}
	if old.Schema == SchemaVersion && new.Schema == SchemaVersion && len(both) == 0 {
		return Result{}, fmt.Errorf("metrics: no common records between documents (subset gate would compare nothing)")
	}
	sub := Document{Schema: new.Schema, Config: new.Config, Records: both}
	res, err := Compare(old, sub, threshold)
	if err != nil {
		return Result{}, err
	}
	res.Missing = nil // subset mode: old-only records are expected
	return res, nil
}

// compareRecords emits the tracked metrics of one matched pair.
func compareRecords(o, n Record, threshold float64) []Delta {
	key := o.Key()
	var out []Delta
	track := func(metric string, old, new, floor int64) {
		d := Delta{Record: key, Metric: metric, Old: old, New: new}
		switch {
		case old == 0 && new == 0:
			d.Ratio = 1
		case old == 0:
			d.Ratio = math.Inf(1)
		default:
			d.Ratio = float64(new) / float64(old)
		}
		if (old > floor || new > floor) && float64(new) > float64(old)*(1+threshold) {
			d.Regressed = true
		}
		out = append(out, d)
	}

	track("makespan.mean_ns", o.Makespan.MeanNS, n.Makespan.MeanNS, timeFloorNS)
	for _, ph := range phaseNames() {
		op, nn := o.Phases[ph], n.Phases[ph]
		if op.MeanNS == 0 && nn.MeanNS == 0 {
			continue
		}
		track("phase."+ph+".mean_ns", op.MeanNS, nn.MeanNS, timeFloorNS)
	}
	track("totals.messages", sumMessages(o.Totals.Links), sumMessages(n.Totals.Links), messagesFloor)
	track("totals.bytes", sumBytes(o.Totals.Links), sumBytes(n.Totals.Links), bytesFloor)
	track("totals.network_bytes",
		o.Totals.Links["network"].Bytes, n.Totals.Links["network"].Bytes, bytesFloor)
	// The one-sided counters are optional schema fields: gate them only
	// when the old document already has put traffic, so a baseline written
	// before the fields existed (or before a record used the one-sided
	// exchange) cannot produce a spurious zero-to-nonzero "regression".
	if sumPuts(o.Totals.Links) > 0 {
		track("totals.puts", sumPuts(o.Totals.Links), sumPuts(n.Totals.Links), messagesFloor)
		track("totals.put_bytes", sumPutBytes(o.Totals.Links), sumPutBytes(n.Totals.Links), bytesFloor)
	}
	// Same additive pattern for the fault block: a baseline lacking it
	// (fault-free, or written before the fields existed) is never gated on
	// it.  The gated quantities are the time the resilience machinery spent,
	// not the raw injection counts — those are fixed by the schedule seed,
	// while the retry/recovery time is what a transport regression inflates.
	if o.Fault != nil {
		var nf FaultStat
		if n.Fault != nil {
			nf = *n.Fault
		}
		track("fault.retry_ns", o.Fault.RetryNS, nf.RetryNS, timeFloorNS)
		track("fault.recovery_ns", o.Fault.RecoveryNS, nf.RecoveryNS, timeFloorNS)
		track("fault.retries", o.Fault.Retries, nf.Retries, messagesFloor)
		track("fault.dedup_hits", o.Fault.DedupHits, nf.DedupHits, messagesFloor)
	}
	return out
}

// phaseNames returns the phase keys in enum order.
func phaseNames() []string {
	names := make([]string, 0, int(NumPhases))
	for p := Phase(0); p < NumPhases; p++ {
		names = append(names, p.String())
	}
	return names
}

func sumMessages(links map[string]LinkStat) int64 {
	var t int64
	for _, l := range links {
		t += l.Messages
	}
	return t
}

func sumBytes(links map[string]LinkStat) int64 {
	var t int64
	for _, l := range links {
		t += l.Bytes
	}
	return t
}

func sumPuts(links map[string]LinkStat) int64 {
	var t int64
	for _, l := range links {
		t += l.Puts
	}
	return t
}

func sumPutBytes(links map[string]LinkStat) int64 {
	var t int64
	for _, l := range links {
		t += l.PutBytes
	}
	return t
}

// Report writes a human-readable delta table: regressions first, then the
// largest improvements, then a one-line verdict.
func (r Result) Report(w io.Writer) {
	for _, k := range r.Missing {
		fmt.Fprintf(w, "MISSING  %s (present in old document, absent in new)\n", k)
	}
	var regressed, improved int
	for _, d := range r.Deltas {
		if d.Regressed {
			regressed++
			fmt.Fprintf(w, "REGRESS  %-40s %-26s %12d -> %-12d (%+.1f%%)\n",
				d.Record, d.Metric, d.Old, d.New, 100*(d.Ratio-1))
		}
	}
	for _, d := range r.Deltas {
		if !d.Regressed && d.Ratio < 1-r.Threshold {
			improved++
			fmt.Fprintf(w, "improve  %-40s %-26s %12d -> %-12d (%+.1f%%)\n",
				d.Record, d.Metric, d.Old, d.New, 100*(d.Ratio-1))
		}
	}
	fmt.Fprintf(w, "compared %d metrics: %d regressed (> %+.0f%%), %d improved, %d missing\n",
		len(r.Deltas), regressed, 100*r.Threshold, improved, len(r.Missing))
}
