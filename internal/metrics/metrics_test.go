package metrics

import (
	"testing"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/simnet"
)

// TestRecorderAttributesTimeAndTraffic drives a recorder by hand: clock
// advances and stats mutations between Enter calls must land in the phase
// that was active when they happened.
func TestRecorderAttributesTimeAndTraffic(t *testing.T) {
	model := simnet.SuperMUC(16, true)
	clock := simnet.NewClock(model)
	var st comm.Stats
	rec := NewRecorder(clock, &st)

	rec.Enter(LocalSort)
	clock.Advance(10 * time.Millisecond)

	rec.Enter(Histogram)
	clock.Advance(2 * time.Millisecond)
	st.Messages[simnet.Network] += 5
	st.Bytes[simnet.Network] += 500
	rec.AddIteration()
	rec.AddIteration()

	rec.Enter(Exchange)
	clock.Advance(7 * time.Millisecond)
	st.Messages[simnet.SameNUMA] += 3
	st.Bytes[simnet.SameNUMA] += 4096
	rec.AddExchangedBytes(4096)

	rec.Enter(Merge)
	clock.Advance(4 * time.Millisecond)
	rec.Finish()
	rec.SetElements(100, 100)

	want := map[Phase]time.Duration{
		LocalSort: 10 * time.Millisecond,
		Histogram: 2 * time.Millisecond,
		Exchange:  7 * time.Millisecond,
		Merge:     4 * time.Millisecond,
		Other:     0,
	}
	for p, d := range want {
		if rec.Times[p] != d {
			t.Errorf("phase %v time = %v, want %v", p, rec.Times[p], d)
		}
	}
	if got := rec.Links[Histogram][simnet.Network]; got != (LinkTally{Messages: 5, Bytes: 500}) {
		t.Errorf("Histogram network tally = %+v", got)
	}
	if got := rec.Links[Exchange][simnet.SameNUMA]; got != (LinkTally{Messages: 3, Bytes: 4096}) {
		t.Errorf("Exchange same-numa tally = %+v", got)
	}
	if got := rec.Links[Exchange][simnet.Network]; got != (LinkTally{}) {
		t.Errorf("Exchange network tally = %+v, want zero", got)
	}
	if rec.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2", rec.Iterations)
	}
	if rec.ExchangedBytes != 4096 {
		t.Errorf("ExchangedBytes = %d, want 4096", rec.ExchangedBytes)
	}
	if rec.Total() != 23*time.Millisecond {
		t.Errorf("Total = %v, want 23ms", rec.Total())
	}
}

// TestNilRecorderIsSafe exercises every method on a nil recorder.
func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	rec.Enter(LocalSort)
	rec.Finish()
	rec.AddIteration()
	rec.AddExchangedBytes(1)
	rec.SetElements(1, 2)
}

// TestSummarizeImbalance checks the cross-rank aggregation: mean/max phase
// times, link totals, and both imbalance factors.
func TestSummarizeImbalance(t *testing.T) {
	model := simnet.SuperMUC(16, true)
	mk := func(sortMS int, out int, netBytes int64) *Recorder {
		clock := simnet.NewClock(model)
		var st comm.Stats
		r := NewRecorder(clock, &st)
		r.Enter(LocalSort)
		clock.Advance(time.Duration(sortMS) * time.Millisecond)
		st.Messages[simnet.Network]++
		st.Bytes[simnet.Network] += netBytes
		r.Finish()
		r.SetElements(out, out)
		return r
	}
	recs := []*Recorder{mk(10, 100, 1000), mk(30, 300, 3000), nil, mk(20, 200, 2000)}
	s := Summarize(recs)
	if s.Ranks != 3 {
		t.Fatalf("Ranks = %d, want 3", s.Ranks)
	}
	if s.Times[LocalSort] != 20*time.Millisecond {
		t.Errorf("mean LocalSort = %v, want 20ms", s.Times[LocalSort])
	}
	if s.MaxTimes[LocalSort] != 30*time.Millisecond {
		t.Errorf("max LocalSort = %v, want 30ms", s.MaxTimes[LocalSort])
	}
	if got := s.TotalLinks()[simnet.Network]; got != (LinkTally{Messages: 3, Bytes: 6000}) {
		t.Errorf("network totals = %+v", got)
	}
	if s.NetworkBytes() != 6000 || s.TotalBytes() != 6000 || s.TotalMessages() != 3 {
		t.Errorf("totals = %d bytes net, %d bytes, %d msgs", s.NetworkBytes(), s.TotalBytes(), s.TotalMessages())
	}
	// max/mean: time 30/20 = 1.5, output 300/200 = 1.5.
	if s.TimeImbalance < 1.49 || s.TimeImbalance > 1.51 {
		t.Errorf("TimeImbalance = %v, want 1.5", s.TimeImbalance)
	}
	if s.OutputImbalance < 1.49 || s.OutputImbalance > 1.51 {
		t.Errorf("OutputImbalance = %v, want 1.5", s.OutputImbalance)
	}
	if f := s.Fraction(LocalSort); f < 0.99 {
		t.Errorf("Fraction(LocalSort) = %v, want ~1", f)
	}
}
