package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

const goldenPath = "testdata/golden_v1.json"

// TestGoldenRoundTrip pins the on-disk schema: the checked-in golden file
// must decode, and re-encoding the decoded document must reproduce it byte
// for byte.  Any schema change shows up as a golden diff and forces a
// deliberate decision (and, for incompatible changes, a version bump).
// goldenDoc is the baseline plus one record exercising the optional
// one-sided fields (exchange, puts/put_bytes/notifies) and the kernel
// fields (local_sort_kernel, threads), so the golden file pins both
// layouts: records without RMA traffic or kernel dispatch keep the
// original byte layout (omitempty), records with them round-trip the new
// counters.
func goldenDoc() Document {
	d := baselineDoc(1.0)
	d.Records = append(d.Records, Record{
		Algorithm:       "dhsort-rma",
		P:               16,
		PerRank:         4096,
		Workload:        "uniform",
		Reps:            3,
		Makespan:        DurationStat{MeanNS: 9_000_000, MinNS: 8_500_000, MaxNS: 9_500_000},
		Imbalance:       Imbalance{Time: 1.01, Output: 1},
		Exchange:        "rma-put",
		LocalSortKernel: "radix",
		Threads:         2,
		Phases: map[string]PhaseStat{
			"Exchange": {MeanNS: 2_500_000, MaxNS: 2_800_000,
				Links: map[string]LinkStat{"same-numa": {Puts: 240, PutBytes: 2_000_000, Notifies: 240}}},
		},
		Totals: Totals{
			Links: map[string]LinkStat{
				"network":   {Messages: 120, Bytes: 48_000},
				"same-numa": {Puts: 240, PutBytes: 2_000_000, Notifies: 240},
			},
			ExchangedBytes: 2_000_000,
		},
		Iterations: 30,
	})
	return d
}

func TestGoldenRoundTrip(t *testing.T) {
	if *updateGolden {
		var buf bytes.Buffer
		if err := Encode(&buf, goldenDoc()); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to regenerate): %v", err)
	}
	doc, err := Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := Encode(&got, doc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("golden round-trip mismatch:\n--- golden\n%s\n--- re-encoded\n%s", want, got.Bytes())
	}
}

// TestMarshalUnmarshalRoundTrip checks the in-memory round-trip through
// encoding/json preserves every field of a fully populated document.
func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	doc := baselineDoc(1.0)
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("marshal/unmarshal/marshal not stable:\n%s\nvs\n%s", b, b2)
	}
	if back.Records[0].Key() != doc.Records[0].Key() {
		t.Errorf("key changed across round-trip: %s vs %s", back.Records[0].Key(), doc.Records[0].Key())
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte(`{"schema":"something/v9"}`))); err == nil {
		t.Fatal("unknown schema must be rejected")
	}
}

func TestEncodeSortsRecords(t *testing.T) {
	doc := Document{Schema: SchemaVersion, Records: []Record{
		{Algorithm: "hss", P: 16, PerRank: 1, Workload: "uniform"},
		{Algorithm: "dhsort", P: 16, PerRank: 1, Workload: "uniform"},
	}}
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Records[0].Algorithm != "dhsort" {
		t.Errorf("records not sorted by key: first is %s", back.Records[0].Algorithm)
	}
}

func TestNewDurationStat(t *testing.T) {
	s := NewDurationStat([]time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond})
	if s.MeanNS != 2_000_000 || s.MinNS != 1_000_000 || s.MaxNS != 3_000_000 {
		t.Errorf("stat = %+v", s)
	}
	if (NewDurationStat(nil) != DurationStat{}) {
		t.Error("empty reps must yield zero stat")
	}
}
