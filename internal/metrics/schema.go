package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"dhsort/internal/simnet"
)

// SchemaVersion identifies the JSON document layout.  Bump it only on
// incompatible changes; the compare gate refuses to diff documents with
// mismatched schemas.
const SchemaVersion = "dhsort-bench/v1"

// Document is the top-level benchmark artifact (BENCH_*.json).
type Document struct {
	// Schema is always SchemaVersion.
	Schema string `json:"schema"`
	// Config records how the suite was run.
	Config RunConfig `json:"config"`
	// Records holds one entry per (algorithm, P, per-rank size, workload)
	// point, sorted by Record.Key.
	Records []Record `json:"records"`
}

// RunConfig describes the suite configuration that produced a document.
type RunConfig struct {
	// Suite is "full" or "smoke".
	Suite string `json:"suite"`
	// Model names the cost model ("supermuc-pgas" / "supermuc-mpi").
	Model string `json:"model"`
	// RanksPerNode is the modelled node width.
	RanksPerNode int `json:"ranks_per_node"`
	// Reps is the repetition count per point.
	Reps int `json:"reps"`
	// Seed is the base workload seed.
	Seed uint64 `json:"seed"`
	// Fault is the fault schedule the suite ran under, in fault.Parse
	// syntax.  OPTIONAL: omitted for fault-free suites, so pre-existing
	// documents stay byte-identical.
	Fault string `json:"fault,omitempty"`
}

// DurationStat summarizes a repeated timing in nanoseconds of virtual (or
// wall) time.
type DurationStat struct {
	MeanNS int64 `json:"mean_ns"`
	MinNS  int64 `json:"min_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// NewDurationStat summarizes reps.
func NewDurationStat(reps []time.Duration) DurationStat {
	if len(reps) == 0 {
		return DurationStat{}
	}
	var sum, min, max time.Duration
	min = reps[0]
	for _, d := range reps {
		sum += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return DurationStat{
		MeanNS: int64(sum) / int64(len(reps)),
		MinNS:  int64(min),
		MaxNS:  int64(max),
	}
}

// LinkStat is the JSON form of a LinkTally.  The one-sided counters are
// OPTIONAL schema fields: they are omitted when zero, so documents from
// runs without RMA traffic — including every pre-existing baseline — are
// byte-identical to the previous layout and round-trip unchanged.
type LinkStat struct {
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
	Puts     int64 `json:"puts,omitempty"`
	PutBytes int64 `json:"put_bytes,omitempty"`
	Notifies int64 `json:"notifies,omitempty"`
}

// PhaseStat is one superstep's contribution: time across ranks plus the
// communication it caused, keyed by link-class name.
type PhaseStat struct {
	// MeanNS is the mean per-rank duration of the phase.
	MeanNS int64 `json:"mean_ns"`
	// MaxNS is the slowest rank's duration of the phase.
	MaxNS int64 `json:"max_ns"`
	// Links maps link-class name ("self", "same-numa", "cross-numa",
	// "network") to the total volume the phase moved over it; classes with
	// no traffic are omitted.
	Links map[string]LinkStat `json:"links,omitempty"`
}

// FaultStat is the JSON form of a FaultTally: the injected faults and the
// resilience work of one record, summed across ranks.  The whole block is
// an OPTIONAL schema field (omitted for fault-free records via the
// `fault,omitempty` pointer on Record), and every counter inside it is
// omitempty too — the same additive pattern as the one-sided counters.
type FaultStat struct {
	Drops           int64 `json:"drops,omitempty"`
	Dups            int64 `json:"dups,omitempty"`
	Delays          int64 `json:"delays,omitempty"`
	Reorders        int64 `json:"reorders,omitempty"`
	Retries         int64 `json:"retries,omitempty"`
	RetryNS         int64 `json:"retry_ns,omitempty"`
	DedupHits       int64 `json:"dedup_hits,omitempty"`
	Checkpoints     int64 `json:"checkpoints,omitempty"`
	CheckpointBytes int64 `json:"checkpoint_bytes,omitempty"`
	Recoveries      int64 `json:"recoveries,omitempty"`
	RecoveryNS      int64 `json:"recovery_ns,omitempty"`
	Stalls          int64 `json:"stalls,omitempty"`
	StallNS         int64 `json:"stall_ns,omitempty"`
	Deaths          int64 `json:"deaths,omitempty"`
	AgreeRounds     int64 `json:"agree_rounds,omitempty"`
	Shrinks         int64 `json:"shrinks,omitempty"`
	ShrinkNS        int64 `json:"shrink_ns,omitempty"`
	Survivors       int   `json:"survivors,omitempty"`
}

// ElasticStat describes the world a job ran on when that world changed
// size since construction: BaseP is the size it was built with, and
// JoinedRanks / RemovedRanks count the ranks the grow and shrink
// collectives added and retired over its lifetime.  The record's own P
// field is the size the job actually used.
type ElasticStat struct {
	BaseP        int `json:"base_p,omitempty"`
	JoinedRanks  int `json:"joined_ranks,omitempty"`
	RemovedRanks int `json:"removed_ranks,omitempty"`
}

// Imbalance carries the run's load-imbalance factors (1.0 = balanced).
type Imbalance struct {
	Time   float64 `json:"time"`
	Output float64 `json:"output"`
}

// Totals aggregates a record across phases.
type Totals struct {
	Links          map[string]LinkStat `json:"links,omitempty"`
	ExchangedBytes int64               `json:"exchanged_bytes"`
}

// Record is one measured configuration.
type Record struct {
	Algorithm string `json:"algorithm"`
	P         int    `json:"p"`
	PerRank   int    `json:"per_rank"`
	Workload  string `json:"workload"`
	Reps      int    `json:"reps"`
	// Makespan is the virtual parallel execution time (max over ranks),
	// summarized over repetitions.
	Makespan DurationStat `json:"makespan"`
	// Iterations is the histogramming iteration count (first repetition).
	Iterations int `json:"iterations"`
	// Probes is the k-ary probe count per unfinished splitter per
	// refinement round.  OPTIONAL: omitted for bisection runs (k = 1
	// records nothing), so pre-existing documents stay byte-identical.
	Probes int `json:"probes,omitempty"`
	// WarmStart reports that splitter refinement was seeded with warm
	// intervals from an earlier run.  OPTIONAL: omitted when false.
	WarmStart bool      `json:"warm_start,omitempty"`
	Imbalance Imbalance `json:"imbalance"`
	// Exchange is the effective data-exchange algorithm the run used
	// (optional: empty for algorithms that do not record one).  It names
	// what actually ran, e.g. "one-factor" when hierarchical silently
	// degraded without node topology, or "rma-put" for the one-sided path.
	Exchange string `json:"exchange,omitempty"`
	// LocalSortKernel names the Local Sort kernel the dispatch chose
	// ("radix", "task-merge", "introsort").  OPTIONAL: omitted when the
	// run did not record one, so pre-existing documents stay
	// byte-identical (the same additive pattern as Exchange).
	LocalSortKernel string `json:"local_sort_kernel,omitempty"`
	// Threads is the intra-rank worker budget of the compute supersteps.
	// OPTIONAL: omitted when unrecorded.
	Threads int `json:"threads,omitempty"`
	// Fault is the fault-plane activity of the first repetition.
	// OPTIONAL: nil (omitted) for fault-free records, so pre-existing
	// documents stay byte-identical.
	Fault *FaultStat `json:"fault,omitempty"`
	// Recovery names the recovery mode the record ran under ("respawn" or
	// "shrink").  OPTIONAL: omitted for fault-free records and for runs
	// that did not set one, preserving byte-identity.
	Recovery string `json:"recovery,omitempty"`
	// Rebalances / RebalanceRounds / RebalanceBytes / RebalanceNS account
	// the post-merge bounded rebalance (skew-proofing).  OPTIONAL: all
	// omitted when the run never rebalanced, so pre-existing documents
	// stay byte-identical (the same additive pattern as Fault).
	Rebalances      int64 `json:"rebalances,omitempty"`
	RebalanceRounds int64 `json:"rebalance_rounds,omitempty"`
	RebalanceBytes  int64 `json:"rebalance_bytes,omitempty"`
	RebalanceNS     int64 `json:"rebalance_ns,omitempty"`
	// TieBreak reports that the run partitioned with duplicate-key splitter
	// tie-breaking.  OPTIONAL: omitted when false.
	TieBreak bool `json:"tie_break,omitempty"`
	// Elastic records that the job ran on an elastically resized persistent
	// world (ranks joined or left between jobs).  OPTIONAL: nil for jobs on
	// statically sized worlds, so pre-existing documents stay byte-identical
	// (the same additive pattern as Fault).
	Elastic *ElasticStat `json:"elastic,omitempty"`
	// MemBudget / SpilledRuns / SpillBytes account the out-of-core path:
	// the per-rank resident budget the record ran under and the store runs
	// it sealed.  OPTIONAL: all omitted for resident records, so
	// pre-existing documents stay byte-identical (the same additive
	// pattern as Fault).
	MemBudget   int64 `json:"mem_budget,omitempty"`
	SpilledRuns int64 `json:"spilled_runs,omitempty"`
	SpillBytes  int64 `json:"spill_bytes,omitempty"`
	// Phases holds the per-superstep breakdown of the first repetition,
	// keyed by phase name (LocalSort, Histogram, Exchange, Merge, Other).
	Phases map[string]PhaseStat `json:"phases"`
	Totals Totals               `json:"totals"`
}

// Key identifies the configuration a record measures; compare matches
// records across documents by it.
func (r Record) Key() string {
	return fmt.Sprintf("%s/p=%d/n=%d/%s", r.Algorithm, r.P, r.PerRank, r.Workload)
}

// linkMap converts per-link tallies to the JSON map form, omitting idle
// classes.
func linkMap(tallies [simnet.NumLinkClasses]LinkTally) map[string]LinkStat {
	out := make(map[string]LinkStat)
	for _, lc := range simnet.LinkClasses {
		t := tallies[lc]
		if t.Messages == 0 && t.Bytes == 0 && t.Puts == 0 && t.Notifies == 0 {
			continue
		}
		out[lc.String()] = LinkStat{
			Messages: t.Messages, Bytes: t.Bytes,
			Puts: t.Puts, PutBytes: t.PutBytes, Notifies: t.Notifies,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// NewRecord builds a record from a run's repetition makespans and the
// first repetition's cross-rank summary.
func NewRecord(algorithm string, p, perRank int, workload string, makespans []time.Duration, s Summary) Record {
	phases := make(map[string]PhaseStat, int(NumPhases))
	for ph := Phase(0); ph < NumPhases; ph++ {
		st := PhaseStat{
			MeanNS: int64(s.Times[ph]),
			MaxNS:  int64(s.MaxTimes[ph]),
			Links:  linkMap(s.Links[ph]),
		}
		if st.MeanNS == 0 && st.MaxNS == 0 && st.Links == nil {
			continue
		}
		phases[ph.String()] = st
	}
	var fs *FaultStat
	if s.Fault.Any() {
		fs = &FaultStat{
			Drops: s.Fault.Drops, Dups: s.Fault.Dups, Delays: s.Fault.Delays,
			Reorders: s.Fault.Reorders, Retries: s.Fault.Retries,
			RetryNS: s.Fault.RetryNS, DedupHits: s.Fault.DedupHits,
			Checkpoints: s.Fault.Checkpoints, CheckpointBytes: s.Fault.CheckpointBytes,
			Recoveries: s.Fault.Recoveries, RecoveryNS: s.Fault.RecoveryNS,
			Stalls: s.Fault.Stalls, StallNS: s.Fault.StallNS,
			Deaths: s.Fault.Deaths, AgreeRounds: s.Fault.AgreeRounds,
			Shrinks: s.Fault.Shrinks, ShrinkNS: s.Fault.ShrinkNS,
			Survivors: s.Survivors,
		}
	}
	return Record{
		Algorithm:       algorithm,
		P:               p,
		PerRank:         perRank,
		Workload:        workload,
		Reps:            len(makespans),
		Makespan:        NewDurationStat(makespans),
		Iterations:      s.MaxIterations,
		Probes:          s.Probes,
		WarmStart:       s.WarmStart,
		Imbalance:       Imbalance{Time: round3(s.TimeImbalance), Output: round3(s.OutputImbalance)},
		Exchange:        s.ExchangeAlg,
		LocalSortKernel: s.LocalSortKernel,
		Threads:         s.Threads,
		Fault:           fs,
		Rebalances:      s.Rebalances,
		RebalanceRounds: s.RebalanceRounds,
		RebalanceBytes:  s.RebalanceBytes,
		RebalanceNS:     s.RebalanceNS,
		TieBreak:        s.TieBreak,
		SpilledRuns:     s.SpilledRuns,
		SpillBytes:      s.SpillBytes,
		Phases:          phases,
		Totals: Totals{
			Links:          linkMap(s.TotalLinks()),
			ExchangedBytes: s.ExchangedBytes,
		},
	}
}

// round3 keeps imbalance factors stable across platforms (3 decimals).
func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}

// Encode writes d as stable, indented JSON: struct fields in declaration
// order, map keys sorted (encoding/json's guarantee), trailing newline.
func Encode(w io.Writer, d Document) error {
	d.Schema = SchemaVersion
	sort.SliceStable(d.Records, func(i, j int) bool { return d.Records[i].Key() < d.Records[j].Key() })
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode reads a document and verifies its schema version.
func Decode(r io.Reader) (Document, error) {
	var d Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return Document{}, fmt.Errorf("metrics: decoding document: %w", err)
	}
	if d.Schema != SchemaVersion {
		return Document{}, fmt.Errorf("metrics: schema %q is not %q", d.Schema, SchemaVersion)
	}
	return d, nil
}
