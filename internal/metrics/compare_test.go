package metrics

import (
	"strings"
	"testing"
)

// baselineDoc builds a small but fully populated document for the gate
// tests; scale multiplies every time metric (1.0 = identical to baseline).
func baselineDoc(timeScale float64) Document {
	ns := func(base int64) int64 { return int64(float64(base) * timeScale) }
	rec := Record{
		Algorithm: "dhsort",
		P:         16,
		PerRank:   4096,
		Workload:  "uniform",
		Reps:      3,
		Makespan:  DurationStat{MeanNS: ns(10_000_000), MinNS: ns(9_000_000), MaxNS: ns(11_000_000)},
		Imbalance: Imbalance{Time: 1.02, Output: 1},
		Phases: map[string]PhaseStat{
			"LocalSort": {MeanNS: ns(4_000_000), MaxNS: ns(4_500_000)},
			"Histogram": {MeanNS: ns(2_000_000), MaxNS: ns(2_500_000),
				Links: map[string]LinkStat{"network": {Messages: 120, Bytes: 48_000}}},
			"Exchange": {MeanNS: ns(3_000_000), MaxNS: ns(3_500_000),
				Links: map[string]LinkStat{"network": {Messages: 240, Bytes: 2_000_000}}},
			"Merge": {MeanNS: ns(1_000_000), MaxNS: ns(1_200_000)},
		},
		Totals: Totals{
			Links:          map[string]LinkStat{"network": {Messages: 360, Bytes: 2_048_000}},
			ExchangedBytes: 2_000_000,
		},
		Iterations: 30,
	}
	return Document{Schema: SchemaVersion, Config: RunConfig{Suite: "full", Model: "supermuc-pgas", RanksPerNode: 16, Reps: 3, Seed: 42}, Records: []Record{rec}}
}

func TestCompareTripsOnTwentyPercentSlowdown(t *testing.T) {
	old := baselineDoc(1.0)
	slow := baselineDoc(1.2)
	res, err := Compare(old, slow, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() {
		t.Fatal("20% slowdown must regress the 10% gate")
	}
	var hit []string
	for _, d := range res.Deltas {
		if d.Regressed {
			hit = append(hit, d.Metric)
		}
	}
	joined := strings.Join(hit, " ")
	for _, want := range []string{"makespan.mean_ns", "phase.LocalSort.mean_ns", "phase.Exchange.mean_ns"} {
		if !strings.Contains(joined, want) {
			t.Errorf("expected %s among regressed metrics, got %v", want, hit)
		}
	}
	// Communication volume did not change, so it must not regress.
	for _, d := range res.Deltas {
		if strings.HasPrefix(d.Metric, "totals.") && d.Regressed {
			t.Errorf("unchanged volume metric %s flagged as regression", d.Metric)
		}
	}
}

func TestComparePassesOnFivePercentSlowdown(t *testing.T) {
	old := baselineDoc(1.0)
	mild := baselineDoc(1.05)
	res, err := Compare(old, mild, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() {
		var hit []string
		for _, d := range res.Deltas {
			if d.Regressed {
				hit = append(hit, d.Metric)
			}
		}
		t.Fatalf("5%% slowdown must pass the 10%% gate, regressed: %v", hit)
	}
}

func TestCompareFlagsVolumeRegression(t *testing.T) {
	old := baselineDoc(1.0)
	fat := baselineDoc(1.0)
	fat.Records[0].Totals.Links = map[string]LinkStat{"network": {Messages: 360, Bytes: 4_096_000}}
	res, err := Compare(old, fat, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() {
		t.Fatal("2x network bytes must regress")
	}
}

// TestCompareIgnoresNewPutFields: a baseline written before the one-sided
// counters existed (or before a record used the RMA exchange) has zero puts;
// a new run that now reports put traffic must NOT trip the gate — the
// optional fields only gate once the baseline itself carries them.
func TestCompareIgnoresNewPutFields(t *testing.T) {
	old := baselineDoc(1.0)
	rma := baselineDoc(1.0)
	links := rma.Records[0].Totals.Links
	links["same-numa"] = LinkStat{Puts: 500, PutBytes: 4_000_000, Notifies: 500}
	res, err := Compare(old, rma, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Deltas {
		if d.Metric == "totals.puts" || d.Metric == "totals.put_bytes" {
			t.Errorf("put metric %s tracked against a baseline without puts", d.Metric)
		}
	}
	if res.Regressed() {
		t.Fatal("new optional put fields must not regress an old baseline")
	}
}

// TestCompareFlagsPutRegression: once the baseline has one-sided traffic,
// growth in it gates like any other volume metric.
func TestCompareFlagsPutRegression(t *testing.T) {
	old := baselineDoc(1.0)
	old.Records[0].Totals.Links["same-numa"] = LinkStat{Puts: 500, PutBytes: 4_000_000, Notifies: 500}
	fat := baselineDoc(1.0)
	fat.Records[0].Totals.Links["same-numa"] = LinkStat{Puts: 1500, PutBytes: 12_000_000, Notifies: 1500}
	res, err := Compare(old, fat, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() {
		t.Fatal("3x put volume must regress once the baseline tracks puts")
	}
}

func TestCompareMissingRecordFails(t *testing.T) {
	old := baselineDoc(1.0)
	res, err := Compare(old, Document{Schema: SchemaVersion}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed() || len(res.Missing) != 1 {
		t.Fatalf("missing record must fail the gate: %+v", res.Missing)
	}
}

func TestCompareIgnoresBelowFloorNoise(t *testing.T) {
	old := baselineDoc(1.0)
	noisy := baselineDoc(1.0)
	// A 3x wobble on a 20µs phase is below the 100µs floor: not a
	// regression.
	old.Records[0].Phases["Other"] = PhaseStat{MeanNS: 20_000}
	noisy.Records[0].Phases["Other"] = PhaseStat{MeanNS: 60_000}
	res, err := Compare(old, noisy, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() {
		t.Fatal("sub-floor wobble must not trip the gate")
	}
}

func TestCompareRejectsSchemaMismatch(t *testing.T) {
	old := baselineDoc(1.0)
	bad := baselineDoc(1.0)
	bad.Schema = "dhsort-bench/v0"
	if _, err := Compare(old, bad, 0.10); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func TestReportMentionsVerdict(t *testing.T) {
	res, err := Compare(baselineDoc(1.0), baselineDoc(1.2), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Report(&sb)
	if !strings.Contains(sb.String(), "REGRESS") || !strings.Contains(sb.String(), "compared") {
		t.Errorf("report missing expected lines:\n%s", sb.String())
	}
}
