package metrics

// SuiteServe marks documents produced by the sort service: one document per
// completed job, retained in the server's metrics ring and exported on
// /v1/metrics.
const SuiteServe = "serve"

// JobDocument wraps one completed service job's record in a standalone
// dhsort-bench/v1 document, so the per-job artifact a server retains is
// schema-identical to the bench suite's output and flows through the same
// Decode/Compare tooling.
func JobDocument(model string, ranksPerNode int, seed uint64, fault string, rec Record) Document {
	return Document{
		Schema: SchemaVersion,
		Config: RunConfig{
			Suite:        SuiteServe,
			Model:        model,
			RanksPerNode: ranksPerNode,
			Reps:         rec.Reps,
			Seed:         seed,
			Fault:        fault,
		},
		Records: []Record{rec},
	}
}
