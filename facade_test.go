package dhsort

import (
	"sort"
	"sync"
	"testing"

	"dhsort/internal/prng"
	"dhsort/internal/workload"
)

func TestPublicQuantiles(t *testing.T) {
	const p, perRank = 4, 2000
	err := Run(p, nil, func(c *Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 7, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		cuts, err := Quantiles(c, local, 4, Uint64Ops)
		if err != nil {
			return err
		}
		if len(cuts) != 3 {
			t.Errorf("got %d cuts", len(cuts))
		}
		// Quartiles of uniform [0,1e9] land near 0.25/0.5/0.75 · 1e9.
		for i, cut := range cuts {
			want := float64(i+1) * 0.25 * 1e9
			if float64(cut) < want*0.9 || float64(cut) > want*1.1 {
				t.Errorf("quartile %d = %d, want ~%.0f", i, cut, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicPlanRoundtrip(t *testing.T) {
	const p, perRank = 5, 400
	outs := make([][]uint64, p)
	var mu sync.Mutex
	err := Run(p, nil, func(c *Comm) error {
		spec := workload.Spec{Dist: workload.Normal, Seed: 8, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		plan, err := MakePlan(c, local, Uint64Ops, Config{})
		if err != nil {
			return err
		}
		got, err := ExecutePlan(c, plan, local, Config{})
		if err != nil {
			return err
		}
		if len(got) != perRank {
			t.Errorf("rank %d: plan execution yielded %d elements", c.Rank(), len(got))
		}
		mu.Lock()
		outs[c.Rank()] = got
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per-rank value ranges must be disjoint ascending (arrival order is
	// not fully sorted, but ownership ranges are).
	var prevMax uint64
	for r, out := range outs {
		var mn, mx uint64 = ^uint64(0), 0
		for _, v := range out {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if r > 0 && mn < prevMax {
			t.Fatalf("rank %d range overlaps predecessor", r)
		}
		prevMax = mx
	}
}

func TestPublicGlobalArray(t *testing.T) {
	err := Run(6, SuperMUCModel(16, true), func(c *Comm) error {
		arr, err := NewGlobalArray[uint64](c, 300, 8)
		if err != nil {
			return err
		}
		src := prng.NewXoshiro256(uint64(c.Rank()))
		arr.Fill(func(i int64) uint64 { return prng.Uint64n(src, 1e6) })
		arr.Barrier()
		if err := arr.Sort(Uint64Ops, Config{}); err != nil {
			return err
		}
		if !arr.IsSorted(Uint64Ops) {
			t.Error("global array not sorted")
		}
		med, err := arr.NthElement(arr.Len()/2, Uint64Ops)
		if err != nil {
			return err
		}
		// The median of the sorted array equals the middle element.
		if got := arr.Get(arr.Len() / 2); got != med {
			t.Errorf("median mismatch: %d vs %d", got, med)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicSortStrings(t *testing.T) {
	words := [][]string{
		{"pear", "apple", "quince"},
		{"banana", "fig", "apple"},
		{"cherry", "date", "elderberry"},
	}
	outs := make([][]string, 3)
	var mu sync.Mutex
	err := Run(3, nil, func(c *Comm) error {
		got, err := Sort(c, words[c.Rank()], StringOps, Config{})
		if err != nil {
			return err
		}
		mu.Lock()
		outs[c.Rank()] = got
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var all, flat []string
	for _, w := range words {
		all = append(all, w...)
	}
	sort.Strings(all)
	for _, o := range outs {
		flat = append(flat, o...)
	}
	for i := range all {
		if flat[i] != all[i] {
			t.Fatalf("mismatch at %d: %q vs %q", i, flat[i], all[i])
		}
	}
}

func TestPublicMergeStrategiesExposed(t *testing.T) {
	for _, m := range []MergeStrategy{MergeResort, MergeBinaryTree, MergeLoserTree, MergeOverlap} {
		if m.String() == "" {
			t.Errorf("strategy %d has no name", int(m))
		}
	}
}
