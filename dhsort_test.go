package dhsort

import (
	"sort"
	"sync"
	"testing"

	"dhsort/internal/workload"
)

func TestPublicSortQuickstart(t *testing.T) {
	const p, perRank = 8, 500
	outs := make([][]uint64, p)
	var mu sync.Mutex
	err := Run(p, nil, func(c *Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 1, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		sorted, err := Sort(c, local, Uint64Ops, Config{})
		if err != nil {
			return err
		}
		if len(sorted) != perRank {
			t.Errorf("rank %d: perfect partitioning violated (%d)", c.Rank(), len(sorted))
		}
		if !IsGloballySorted(c, sorted, Uint64Ops) {
			t.Errorf("rank %d: output not globally sorted", c.Rank())
		}
		mu.Lock()
		outs[c.Rank()] = sorted
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicNthElement(t *testing.T) {
	const p, perRank = 5, 800
	var all []float64
	locals := make([][]float64, p)
	for r := 0; r < p; r++ {
		spec := workload.Spec{Dist: workload.Normal, Seed: 2, Span: 1e9}
		raw, _ := spec.Rank(r, perRank)
		locals[r] = workload.Floats(raw)
		all = append(all, locals[r]...)
	}
	sort.Float64s(all)
	k := int64(len(all) / 2)
	err := Run(p, nil, func(c *Comm) error {
		got, err := NthElement(c, locals[c.Rank()], k, Float64Ops)
		if err != nil {
			return err
		}
		if got != all[k] {
			t.Errorf("rank %d: median %v, want %v", c.Rank(), got, all[k])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicRunTimedVirtual(t *testing.T) {
	model := SuperMUCModel(16, true)
	d, err := RunTimed(32, model, func(c *Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), 200)
		_, err := Sort(c, local, Uint64Ops, Config{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("virtual makespan must be positive")
	}
}

func TestPublicRunPropagatesErrors(t *testing.T) {
	if err := Run(0, nil, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("invalid world size must error")
	}
}

func TestPublicInt64AndFloat32Ops(t *testing.T) {
	err := Run(4, nil, func(c *Comm) error {
		localI := []int64{int64(c.Rank()) - 2, int64(c.Rank()) * 7}
		outI, err := Sort(c, localI, Int64Ops, Config{})
		if err != nil {
			return err
		}
		if !IsGloballySorted(c, outI, Int64Ops) {
			t.Error("int64 sort failed")
		}
		localF := []float32{float32(c.Rank()) - 1.5, float32(c.Rank()) * 2}
		outF, err := Sort(c, localF, Float32Ops, Config{})
		if err != nil {
			return err
		}
		if !IsGloballySorted(c, outF, Float32Ops) {
			t.Error("float32 sort failed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
