// Package dhsort is a distributed histogram sort: a Go reproduction of
// "Engineering a Distributed Histogram Sort" (Kowalewski, Jungblut,
// Fürlinger — IEEE CLUSTER 2019).
//
// The library sorts a sequence partitioned across P ranks.  Ranks are
// goroutines inside one process, communicating through an MPI-like runtime
// with tag-matched point-to-point messages and tree/recursive-doubling
// collectives.  Execution is either in real time or — when given a network
// cost model — against deterministic per-rank virtual clocks, which is how
// the paper's 3584-core scaling studies are reproduced on a single machine.
//
// # Quick start
//
//	cfg := dhsort.Config{}              // perfect partitioning, ε = 0
//	err := dhsort.Run(8, nil, func(c *dhsort.Comm) error {
//		local := loadMyShare(c.Rank()) // []uint64
//		sorted, err := dhsort.Sort(c, local, dhsort.Uint64Ops, cfg)
//		// sorted is this rank's partition of the global order and has
//		// exactly len(local) elements.
//		return err
//	})
//
// The algorithm makes no assumptions about the key distribution, the rank
// count (no power-of-two requirement), or the input partitioning (ranks may
// be empty).  Every element moves across the network exactly once.
//
// NthElement exposes the underlying distributed selection (Algorithm 1 of
// the paper) for order-statistic queries without sorting.
package dhsort

import (
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/fault"
	"dhsort/internal/garray"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/store"
)

// Comm is one rank's communicator handle; see Run.
type Comm = comm.Comm

// World hosts the ranks of one collective execution.
type World = comm.World

// Config tunes a distributed sort; the zero value requests perfect
// partitioning with the re-sort merge strategy, matching the paper's
// evaluated configuration.  Config.Probes widens splitter refinement to k
// probes per boundary per round; Config.Warm seeds the refinement intervals
// from an earlier run (see WarmInterval).
type Config = core.Config

// WarmInterval seeds one splitter's refinement interval from a previous run
// over a similar key distribution (Config.Warm).  A stale interval costs a
// restart of that boundary, never correctness.
type WarmInterval = core.WarmInterval

// MaxProbes bounds Config.Probes.
const MaxProbes = core.MaxProbes

// Uint64WarmIntervals derives Config.Warm seed intervals from the converged
// splitters of an earlier uint64 sort: each splitter is bracketed by a
// quarter of the gap to its nearest neighbor (saturating at the domain
// bounds), which is tight enough to skip most refinement rounds on a repeat
// of the distribution yet wide enough to absorb sampling noise across seeds.
func Uint64WarmIntervals(splitters []uint64) []WarmInterval {
	out := make([]WarmInterval, len(splitters))
	for i, s := range splitters {
		var gap uint64
		if i > 0 {
			gap = s - splitters[i-1]
		}
		if i+1 < len(splitters) {
			if g := splitters[i+1] - s; g > gap {
				gap = g
			}
		}
		if gap == 0 {
			gap = 1 << 18 // lone or duplicated splitter: a fixed modest slack
		}
		slack := gap/4 + 1
		lo, hi := s-slack, s+slack
		if lo > s {
			lo = 0 // underflow: clamp to the domain minimum
		}
		if hi < s {
			hi = ^uint64(0) // overflow: clamp to the domain maximum
		}
		out[i] = WarmInterval{Lo: Uint64Ops.ToBits(lo), Hi: Uint64Ops.ToBits(hi)}
	}
	return out
}

// MergeStrategy selects the Local Merge algorithm (§V-C of the paper).
type MergeStrategy = core.MergeStrategy

// The available merge strategies.
const (
	// MergeResort re-sorts the received runs (the paper's default).
	MergeResort = core.MergeResort
	// MergeBinaryTree merges runs pairwise.
	MergeBinaryTree = core.MergeBinaryTree
	// MergeLoserTree merges runs through a tournament tree.
	MergeLoserTree = core.MergeLoserTree
	// MergeOverlap fuses the exchange with merging (§VI-E1 of the paper).
	MergeOverlap = core.MergeOverlap
)

// CostModel prices communication and computation for virtual-time
// execution; nil means real time.
type CostModel = simnet.CostModel

// ExchangeAlgorithm selects the data-exchange backend (Config.Exchange).
type ExchangeAlgorithm = comm.AlltoallAlgorithm

// The available exchange backends (§VI-E1 of the paper).
const (
	// ExchangeAuto picks an ALLTOALLV schedule by priced message size.
	ExchangeAuto = comm.AlltoallAuto
	// ExchangePairwise is the linear shifted ALLTOALLV exchange.
	ExchangePairwise = comm.AlltoallPairwise
	// ExchangeOneFactor schedules the ALLTOALLV as perfect matchings.
	ExchangeOneFactor = comm.AlltoallOneFactor
	// ExchangeBruck is the store-and-forward ALLTOALLV algorithm.
	ExchangeBruck = comm.AlltoallBruck
	// ExchangeHierarchical aggregates through node leaders.
	ExchangeHierarchical = comm.AlltoallHierarchical
	// ExchangeRMAPut is the one-sided put+notify exchange over rma
	// windows, fused with merging (the paper's DASH/DART substrate).
	ExchangeRMAPut = comm.ExchangeRMAPut
)

// Recorder captures per-rank phase timings (see Config.Recorder).
type Recorder = metrics.Recorder

// SuperMUCModel returns the cost model of the paper's evaluation machine
// (SuperMUC Phase 2, Table I).  ranksPerNode is 16 or 28 in the paper;
// pgas selects MPI-3 shared-memory-window pricing for intra-node traffic.
func SuperMUCModel(ranksPerNode int, pgas bool) *CostModel {
	return simnet.SuperMUC(ranksPerNode, pgas)
}

// Key operations for the built-in key types.  Pass one of these (or any
// other keys.Ops implementation) to Sort and NthElement.
var (
	// Uint64Ops sorts uint64 keys.
	Uint64Ops = keys.Uint64{}
	// Int64Ops sorts int64 keys.
	Int64Ops = keys.Int64{}
	// Float64Ops sorts float64 keys in IEEE-754 total order.
	Float64Ops = keys.Float64{}
	// Uint32Ops sorts uint32 keys.
	Uint32Ops = keys.Uint32{}
	// Int32Ops sorts int32 keys.
	Int32Ops = keys.Int32{}
	// Float32Ops sorts float32 keys.
	Float32Ops = keys.Float32{}
	// StringOps sorts string keys lexicographically.  Order is always
	// exact; perfect partitioning is exact up to runs of distinct keys
	// sharing a 16-byte prefix (see keys.String).
	StringOps = keys.String{}
)

// FaultPlan is a deterministic seeded failure schedule for resilience
// testing: message drop/duplication/delay/reorder rates plus rank crashes,
// stalls and permanent deaths pinned to superstep boundaries.  The zero
// value injects nothing.  See ParseFaultPlan for the textual syntax.
type FaultPlan = fault.Plan

// ParseFaultPlan parses the -fault CLI syntax, e.g.
// "drop=0.01,dup=0.005,delay=0.02:50us,seed=7,crash=3@2,stall=1@1:200us,die=5@1".
func ParseFaultPlan(spec string) (FaultPlan, error) {
	return fault.Parse(spec)
}

// Recovery modes for permanent rank deaths (Config.Recovery).
const (
	// RecoveryRespawn (the default) rides out crashes by respawning from
	// superstep checkpoints; a permanent death is fatal (ErrRankDead).
	RecoveryRespawn = core.RecoveryRespawn
	// RecoveryShrink continues on the survivors after a permanent death:
	// revoke, agree, adopt the victim's mirrored shard, shrink, redo.
	RecoveryShrink = core.RecoveryShrink
)

// ErrRankDead is the typed error surfaced when a peer rank has permanently
// left the computation and no recovery mode consumes the failure.
var ErrRankDead = comm.ErrRankDead

// ErrShardLost marks an unrecoverable shrink: a victim's checkpoint shard
// has no surviving holder (e.g. two ring-adjacent ranks died at the same
// boundary), so a loss-free continuation is impossible.
var ErrShardLost = core.ErrShardLost

// ErrCheckpointCorrupt marks a failed checkpoint restore: the snapshot and
// every surviving replica (ring mirror, or the durable primary and replica
// shards when a store is configured) failed the checksum audit.
var ErrCheckpointCorrupt = core.ErrCheckpointCorrupt

// Store is the out-of-core storage plane: named, ordered runs of 128-bit
// key images behind a small interface, with in-memory and filesystem
// implementations (see internal/store).  Config.Store shares one across
// ranks for spilled runs and durable checkpoint shards.
type Store = store.Store

// NewMemStore returns an in-memory Store: run semantics without touching
// disk (tests, and the chaos oracle's backing axis).
func NewMemStore() Store { return store.NewMem() }

// NewFSStore returns a filesystem Store rooted at dir: chunk-buffered
// sequential run files with FNV-checksummed footers.
func NewFSStore(dir string) Store { return store.NewFS(dir) }

// Uint64Spill returns cfg configured for an out-of-core uint64 sort:
// memBudget bytes of resident working set per rank (16 bytes per key in
// run records; a rank whose partition exceeds the budget sorts via spilled
// disk runs and a k-way external merge), with scratch runs and durable
// checkpoint shards rooted at scratchDir.  An empty scratchDir keeps the
// runs in a run-private memory store — budget-bounded execution without a
// scratch directory, but without cross-rank durability (shrink recovery
// then needs Config.Store).  The output is bit-identical to the resident
// sort at identical parameters.
func Uint64Spill(cfg Config, memBudget int64, scratchDir string) Config {
	cfg.MemBudget = memBudget
	cfg.SpillDir = scratchDir
	return cfg
}

// Run executes fn once per rank on a fresh world of p ranks and waits for
// completion.  model selects virtual-time execution (nil = real time).
// Errors and panics from any rank abort the world and are joined into the
// returned error.
func Run(p int, model *CostModel, fn func(c *Comm) error) error {
	w, err := comm.NewWorld(p, model)
	if err != nil {
		return err
	}
	return w.Run(fn)
}

// RunWithFaults is Run under a seeded fault schedule: the world's links
// inject the plan's failures deterministically and the communication layer
// rides them out with retries, dedup and superstep checkpoint-recovery, so
// fn must still observe a correct sort.  A zero plan is exactly Run.
func RunWithFaults(p int, model *CostModel, plan FaultPlan, fn func(c *Comm) error) error {
	w, err := comm.NewWorldWithFaults(p, model, plan)
	if err != nil {
		return err
	}
	return w.Run(fn)
}

// RunTimedWithFaults is RunWithFaults additionally returning the execution
// makespan, for callers that account per-run time under fault injection
// (e.g. the sort service's dedicated-world jobs).
func RunTimedWithFaults(p int, model *CostModel, plan FaultPlan, fn func(c *Comm) error) (time.Duration, error) {
	w, err := comm.NewWorldWithFaults(p, model, plan)
	if err != nil {
		return 0, err
	}
	err = w.Run(fn)
	return w.Makespan(), err
}

// PersistentWorld is a reusable world: rank goroutines, per-rank clocks and
// communicator state survive across jobs, so successive sorts on the same
// world skip goroutine and comm-state construction — the warm-world
// substrate of the sort service's pool.  Per-job stats and clocks reset
// between jobs; a failed job breaks the world (see comm.PersistentWorld).
type PersistentWorld = comm.PersistentWorld

// ErrWorldBroken marks a persistent world poisoned by an earlier failed job.
var ErrWorldBroken = comm.ErrWorldBroken

// NewPersistentWorld creates a reusable world of p ranks; call Execute once
// per job (the reusable Run variant) and Close when done.  model selects
// virtual-time execution (nil = real time).
func NewPersistentWorld(p int, model *CostModel) (*PersistentWorld, error) {
	return comm.NewPersistentWorld(p, model)
}

// Spawned tracks rank goroutines admitted into a running world by
// World.Spawn; Wait joins their outcomes.
type Spawned = comm.Spawned

// AwaitGrow is the joiner's half of the grow collective: a rank spawned
// into a running world blocks on the sponsor's join ticket (sponsor is a
// world rank), builds the grown communicator from it, and synchronizes at
// the join barrier.  The incumbents' half is Comm.Grow; see internal/comm.
func AwaitGrow(c *Comm, sponsor int) *Comm {
	return comm.AwaitGrow(c, sponsor)
}

// GrowRebalance re-partitions sorted per-rank output onto a grown
// communicator: incumbents pass their partitions, joiners empty slices, and
// every rank receives its balanced share of the same global order —
// order-preserving diffusion over adjacent boundaries, priced on the
// virtual clock.  Collective on the communicator Grow/AwaitGrow returned.
func GrowRebalance[K any](c *Comm, out []K, ops keys.Ops[K], cfg Config) []K {
	return core.GrowRebalance(c, out, ops, cfg)
}

// RunTimed is Run, additionally returning the execution makespan: the
// maximum per-rank virtual completion time under a cost model, or the
// slowest rank's wall-clock time without one.
func RunTimed(p int, model *CostModel, fn func(c *Comm) error) (time.Duration, error) {
	w, err := comm.NewWorld(p, model)
	if err != nil {
		return 0, err
	}
	err = w.Run(fn)
	return w.Makespan(), err
}

// Sort sorts the distributed sequence whose share on this rank is local and
// returns this rank's partition of the global order.  Collective: every
// rank of c must call it with a consistent cfg.  See core.Sort for the
// full contract.
func Sort[K any](c *Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	return core.Sort(c, local, ops, cfg)
}

// SortResilient is Sort additionally returning the effective communicator
// the result lives on.  Without shrink recovery that is c itself; with
// cfg.Recovery == RecoveryShrink and a permanent rank death it is the
// shrunken survivor communicator — run collective follow-ups
// (IsGloballySorted, further sorts) on it.  A rank scheduled to die never
// returns; its goroutine exits inside the collective call and the world
// treats that as a clean exit.
func SortResilient[K any](c *Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, *Comm, error) {
	return core.SortResilient(c, local, ops, cfg)
}

// NthElement returns the k-th smallest element (0-based) of the distributed
// sequence on every rank without sorting it — the dash::nth_element
// building block (Algorithm 1 of the paper).  Collective.
func NthElement[K any](c *Comm, local []K, k int64, ops keys.Ops[K]) (K, error) {
	return core.DSelect(c, local, k, ops, Config{})
}

// Ops supplies ordering and splitter-bisection operations for key type K;
// see the built-in instances (Uint64Ops, Float64Ops, ...) and keys.Ops for
// the contract.
type Ops[K any] = keys.Ops[K]

// Pair is a sortable record: a key plus opaque satellite data.
type Pair[K, V any] = keys.Pair[K, V]

// PairOps returns Ops for Pair records ordered by key, so satellite data
// travels with its key through the sort.
func PairOps[K, V any](base Ops[K]) Ops[Pair[K, V]] {
	return keys.NewPairOps[K, V](base)
}

// Plan is a partitioning decision computed without moving data; see
// MakePlan.
type Plan[K any] = core.Plan[K]

// MakePlan runs splitter determination and boundary refinement only,
// returning the exchange plan (splitters, per-rank cuts, send counts) with
// all data left in place — for applications that relocate their own
// payloads.  Collective.
func MakePlan[K any](c *Comm, local []K, ops Ops[K], cfg Config) (Plan[K], error) {
	return core.MakePlan(c, local, ops, cfg)
}

// ExecutePlan relocates a satellite slice according to a plan from
// MakePlan; see core.ExecutePlan for the ordering contract.  Collective.
func ExecutePlan[K, V any](c *Comm, pl Plan[K], values []V, cfg Config) ([]V, error) {
	return core.ExecutePlan(c, pl, values, cfg)
}

// Quantiles returns q-1 cut values splitting the distributed sequence into
// q equal-count buckets (an equi-depth histogram) without moving data.
// Collective.
func Quantiles[K any](c *Comm, local []K, q int, ops Ops[K]) ([]K, error) {
	return core.Quantiles(c, local, q, ops, Config{})
}

// GlobalArray is a PGAS-style block-distributed array with one-sided
// access and container-level Sort/NthElement/Quantiles — the DASH
// abstraction of the paper; see the garray package for the access rules.
type GlobalArray[K any] = garray.GlobalArray[K]

// NewGlobalArray collectively allocates a distributed array with the given
// local partition size on this rank; elemBytes prices remote accesses.
func NewGlobalArray[K any](c *Comm, localSize, elemBytes int) (*GlobalArray[K], error) {
	return garray.New[K](c, localSize, elemBytes)
}

// IsGloballySorted collectively verifies the sorted-output invariant and
// returns the verdict on every rank.
func IsGloballySorted[K any](c *Comm, local []K, ops keys.Ops[K]) bool {
	return core.IsGloballySorted(c, local, ops)
}
