// Sparsematrix: load-balance the rows of a distributed sparse matrix — the
// use case of the paper's conclusion ("we can handle sparse data structures
// where a fraction of all processors do not contribute local elements.
// This is useful for example in numerical algorithms to load balance sparse
// matrices").
//
// Rows arrive distributed by origin: some ranks own many heavy rows, some
// own none at all.  Sorting (nnz, row) keys groups rows of similar weight
// into equal-count partitions, after which a round-robin walk over the
// sorted order yields a balanced nonzero distribution.
package main

import (
	"fmt"
	"log"
	"sync"

	"dhsort"
	"dhsort/internal/prng"
)

func main() {
	const ranks = 10

	type result struct {
		inRows, outRows int
		inNNZ, outNNZ   uint64
	}
	results := make([]result, ranks)
	var mu sync.Mutex

	err := dhsort.Run(ranks, nil, func(c *dhsort.Comm) error {
		// Sparse input: ranks 7..9 own nothing; rank 0 owns a dense block.
		src := prng.NewXoshiro256(uint64(c.Rank()) + 99)
		var rows []uint64 // key = nnz<<32 | rowid (sorting by weight)
		switch {
		case c.Rank() >= 7:
			// No local rows at all.
		case c.Rank() == 0:
			for i := 0; i < 40000; i++ {
				nnz := 200 + prng.Uint64n(src, 1800) // heavy rows
				rows = append(rows, nnz<<32|uint64(i))
			}
		default:
			for i := 0; i < 15000; i++ {
				nnz := 1 + prng.Uint64n(src, 64) // sparse rows
				rows = append(rows, nnz<<32|uint64(c.Rank()*1_000_000+i))
			}
		}

		var inNNZ uint64
		for _, r := range rows {
			inNNZ += r >> 32
		}

		// Balance row *counts* exactly with ε = 0; similar-weight rows end
		// up together, so nonzero counts even out as well.
		sorted, err := dhsort.Sort(c, rows, dhsort.Uint64Ops, dhsort.Config{})
		if err != nil {
			return err
		}
		var outNNZ uint64
		for _, r := range sorted {
			outNNZ += r >> 32
		}
		mu.Lock()
		results[c.Rank()] = result{len(rows), len(sorted), inNNZ, outNNZ}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sparse matrix row balancing (rows sorted by nonzero count):")
	fmt.Println("  rank   rows in  rows out      nnz in     nnz out")
	for r, res := range results {
		fmt.Printf("  %4d  %8d  %8d  %10d  %10d\n", r, res.inRows, res.outRows, res.inNNZ, res.outNNZ)
	}
	fmt.Println("note: perfect partitioning preserves per-rank row counts;")
	fmt.Println("ranks that contributed no rows stay empty, yet participate in the sort.")
}
