// Records: sort structured records by key with satellite data — the
// std::sort-on-structs use case of the paper's STL-like interface, here as
// a distributed merge of per-service event logs into one global timeline.
//
// Each rank holds the (unsorted) event log of one service.  Sorting
// (timestamp, payload) records produces a globally time-ordered log,
// perfectly partitioned across the ranks, with every payload still attached
// to its timestamp.
package main

import (
	"fmt"
	"log"
	"sync"

	"dhsort"
	"dhsort/internal/prng"
)

// event is a log record: timestamp key plus satellite data.
type payload struct {
	Service uint32
	Seq     uint32
	Code    uint16
}

func main() {
	const (
		ranks   = 6
		perRank = 80000
	)
	ops := dhsort.PairOps[uint64, payload](dhsort.Uint64Ops)

	type summary struct {
		first, last uint64
		n           int
	}
	summaries := make([]summary, ranks)
	var mu sync.Mutex

	err := dhsort.Run(ranks, nil, func(c *dhsort.Comm) error {
		// Events arrive out of order within each service's log.
		src := prng.NewXoshiro256(uint64(c.Rank()) + 1000)
		local := make([]dhsort.Pair[uint64, payload], perRank)
		clock := uint64(0)
		for i := range local {
			clock += prng.Uint64n(src, 2000) // irregular arrival gaps
			jitter := prng.Uint64n(src, 50000)
			local[i] = dhsort.Pair[uint64, payload]{
				Key: clock + jitter,
				Val: payload{Service: uint32(c.Rank()), Seq: uint32(i), Code: uint16(prng.Uint64n(src, 600))},
			}
		}

		merged, err := dhsort.Sort(c, local, ops, dhsort.Config{})
		if err != nil {
			return err
		}
		// Every payload must still match its origin invariants.
		for _, e := range merged {
			if e.Val.Service >= ranks || e.Val.Seq >= perRank {
				return fmt.Errorf("satellite data corrupted: %+v", e.Val)
			}
		}
		mu.Lock()
		summaries[c.Rank()] = summary{merged[0].Key, merged[len(merged)-1].Key, len(merged)}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("merged %d events from %d services into a global timeline:\n", ranks*perRank, ranks)
	for r, s := range summaries {
		fmt.Printf("  rank %d: %6d events, time span [%9d, %9d]\n", r, s.n, s.first, s.last)
	}
	fmt.Println("each rank owns a contiguous, equally sized slice of the timeline;")
	fmt.Println("payloads travelled with their timestamps.")
}
