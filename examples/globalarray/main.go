// Globalarray: the PGAS container view — allocate a distributed array,
// fill it owner-computes, sort it in place with the container API, and
// read across partition boundaries one-sidedly, exactly the DASH-style
// workflow the paper's implementation targets (§VI-A1).
package main

import (
	"fmt"
	"log"
	"sync"

	"dhsort"
	"dhsort/internal/prng"
)

func main() {
	const (
		ranks   = 8
		perRank = 100000
	)
	var deciles []uint64
	var once sync.Once

	err := dhsort.Run(ranks, nil, func(c *dhsort.Comm) error {
		// A distributed array in the global address space.
		arr, err := dhsort.NewGlobalArray[uint64](c, perRank, 8)
		if err != nil {
			return err
		}

		// Owner-computes initialization of the local partition.
		src := prng.NewMT19937_64(uint64(c.Rank()) + 3)
		arr.Fill(func(i int64) uint64 { return prng.Uint64n(src, 1_000_000_000) })
		arr.Barrier()

		// Container-level sort: perfect partitioning keeps the layout.
		if err := arr.Sort(dhsort.Uint64Ops, dhsort.Config{}); err != nil {
			return err
		}
		if !arr.IsSorted(dhsort.Uint64Ops) {
			return fmt.Errorf("rank %d: array not sorted", c.Rank())
		}

		// One-sided reads across the whole array: every rank samples the
		// deciles directly, no message code needed.
		ds := make([]uint64, 0, 9)
		for d := int64(1); d < 10; d++ {
			ds = append(ds, arr.Get(arr.Len()*d/10))
		}
		once.Do(func() { deciles = ds })
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorted a %d-element global array in place on %d ranks\n", ranks*perRank, ranks)
	fmt.Println("deciles read one-sidedly from the sorted array:")
	for i, d := range deciles {
		fmt.Printf("  %2d%%  %10d\n", (i+1)*10, d)
	}
}
