// Morton: load-balance an N-body particle simulation with a space-filling
// curve — the motivating use case of the paper's introduction ("irregular
// applications, like N-Body particle simulations, can achieve load
// balancing through space filling curves (e.g., Morton Order) by sorting
// n-dimensional coordinates according to a projection into the
// 1-dimensional space").
//
// Each rank owns a clustered blob of particles (as after a few timesteps of
// gravity).  Sorting the particles by their Morton code redistributes them
// so every rank owns a spatially compact, equally sized region of the
// curve.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"dhsort"
	"dhsort/internal/prng"
)

// particle is a point in the unit cube.
type particle struct{ x, y, z float64 }

// mortonCode interleaves the top 21 bits of each quantized coordinate into
// a 63-bit Morton (Z-order) key.
func mortonCode(p particle) uint64 {
	const bits = 21
	quant := func(v float64) uint64 {
		if v < 0 {
			v = 0
		}
		if v >= 1 {
			v = math.Nextafter(1, 0)
		}
		return uint64(v * (1 << bits))
	}
	return spread(quant(p.x)) | spread(quant(p.y))<<1 | spread(quant(p.z))<<2
}

// spread inserts two zero bits between each of the low 21 bits.
func spread(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

func main() {
	const (
		ranks   = 12
		perRank = 50000
	)
	type span struct{ lo, hi uint64 }
	spans := make([]span, ranks)
	var mu sync.Mutex

	err := dhsort.Run(ranks, nil, func(c *dhsort.Comm) error {
		// Each rank starts with a Gaussian cluster around its own centre:
		// spatially skewed, like a halo after gravitational collapse.
		src := prng.NewMT19937_64(uint64(c.Rank())*7 + 1)
		norm := &prng.Normal{Src: src}
		cx := 0.15 + 0.7*float64(c.Rank())/float64(ranks)
		codes := make([]uint64, perRank)
		for i := range codes {
			p := particle{
				x: clamp(cx + 0.05*norm.Next()),
				y: clamp(0.5 + 0.15*norm.Next()),
				z: clamp(0.5 + 0.15*norm.Next()),
			}
			codes[i] = mortonCode(p)
		}

		// Sort by Morton code.  In a real simulation the key would be the
		// (code, particle) pair; the code alone shows the partitioning.
		sorted, err := dhsort.Sort(c, codes, dhsort.Uint64Ops, dhsort.Config{})
		if err != nil {
			return err
		}
		if len(sorted) != perRank {
			return fmt.Errorf("rank %d: imbalanced after sort: %d", c.Rank(), len(sorted))
		}
		mu.Lock()
		spans[c.Rank()] = span{sorted[0], sorted[len(sorted)-1]}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Morton-ordered %d particles over %d ranks; each rank now owns\n", ranks*perRank, ranks)
	fmt.Println("an equal, contiguous span of the space-filling curve:")
	for r, s := range spans {
		fmt.Printf("  rank %2d: curve span [%016x, %016x]\n", r, s.lo, s.hi)
	}
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
