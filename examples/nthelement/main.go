// Nthelement: distributed order statistics without sorting — the
// dash::nth_element building block the paper derives its splitter search
// from (Algorithm 1, §IV).
//
// A fleet of ranks each holds a shard of latency samples; the program
// computes the global median and tail percentiles with O(log P)
// communication rounds and no data movement.
package main

import (
	"fmt"
	"log"
	"sync"

	"dhsort"
	"dhsort/internal/prng"
)

func main() {
	const (
		ranks   = 16
		perRank = 200000
		total   = int64(ranks * perRank)
	)
	quantiles := []struct {
		name string
		k    int64
	}{
		{"p50", total / 2},
		{"p90", total * 90 / 100},
		{"p99", total * 99 / 100},
		{"p99.9", total * 999 / 1000},
		{"max", total - 1},
	}

	values := make([]float64, len(quantiles))
	var once sync.Once

	err := dhsort.Run(ranks, nil, func(c *dhsort.Comm) error {
		// Synthetic latency shard: lognormal-ish body with a heavy tail.
		src := prng.NewMT19937_64(uint64(c.Rank()) + 7)
		norm := &prng.Normal{Src: src}
		local := make([]float64, perRank)
		for i := range local {
			ms := 5.0 + 2.0*norm.Next()*norm.Next() // squared normal: skewed
			if ms < 0.1 {
				ms = 0.1
			}
			if prng.Uint64n(src, 1000) == 0 {
				ms *= 50 // rare slow requests
			}
			local[i] = ms
		}

		got := make([]float64, len(quantiles))
		for i, q := range quantiles {
			v, err := dhsort.NthElement(c, local, q.k, dhsort.Float64Ops)
			if err != nil {
				return err
			}
			got[i] = v
		}
		once.Do(func() { copy(values, got) }) // identical on every rank
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("latency percentiles over %d samples on %d ranks (no sort, no data movement):\n", total, ranks)
	for i, q := range quantiles {
		fmt.Printf("  %-6s %8.2f ms\n", q.name, values[i])
	}
}
