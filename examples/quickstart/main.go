// Quickstart: sort a distributed sequence of uint64 keys on 8 ranks and
// verify the output invariant — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"sync"

	"dhsort"
	"dhsort/internal/prng"
)

func main() {
	const (
		ranks   = 8
		perRank = 100000
	)
	firsts := make([]uint64, ranks)
	var mu sync.Mutex

	err := dhsort.Run(ranks, nil, func(c *dhsort.Comm) error {
		// Each rank generates its own share of the input.
		src := prng.NewMT19937_64(uint64(c.Rank()) + 42)
		local := make([]uint64, perRank)
		for i := range local {
			local[i] = prng.Uint64n(src, 1_000_000_000) // the paper's [0, 1e9]
		}

		// Sort collectively: perfect partitioning, so this rank gets back
		// exactly perRank elements of the global order.
		sorted, err := dhsort.Sort(c, local, dhsort.Uint64Ops, dhsort.Config{})
		if err != nil {
			return err
		}
		if len(sorted) != perRank {
			return fmt.Errorf("rank %d: expected %d elements, got %d", c.Rank(), perRank, len(sorted))
		}
		if !dhsort.IsGloballySorted(c, sorted, dhsort.Uint64Ops) {
			return fmt.Errorf("rank %d: output not globally sorted", c.Rank())
		}
		mu.Lock()
		firsts[c.Rank()] = sorted[0]
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorted %d keys across %d ranks; first key per rank:\n", ranks*perRank, ranks)
	for r, v := range firsts {
		fmt.Printf("  rank %d starts at %10d\n", r, v)
	}
	fmt.Println("output verified: globally sorted with perfect partitioning")
}
