# Developer entry points; `make ci` is the gate CI and pre-push runs.

.PHONY: ci test race chaos chaos-repro serve serve-smoke elastic-smoke bench-smoke bench-json bench-compare bench-exchange bench-local bench-fault bench-shrink bench-skew bench-split bench-ooc bench-elastic

# Chaos tier defaults; override per invocation, e.g.
#   make chaos SEED=12345 COUNT=256
#   make chaos-repro SEED=12345 SCENARIO=17
SEED ?= 20260807
COUNT ?= 64
SCENARIO ?= 0

ci:
	./ci.sh

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/comm ./internal/rma ./internal/psort ./internal/sortutil ./internal/core ./internal/hss ./internal/fault ./internal/store ./internal/server ./internal/api ./internal/chaos

# Run the sort service locally (see cmd/dhsortd for the API and flags):
#   make serve ADDR=:8080
ADDR ?= :8080
serve:
	go run ./cmd/dhsortd -addr $(ADDR)

# End-to-end service smoke: boot dhsortd on a random port, drive it with the
# dhsort client, verify the streamed result (also part of the CI gate).
serve-smoke:
	./ci.sh serve

# Elasticity smoke: boot dhsortd with the autoscaler on hot thresholds,
# flood it until the target grows, let it idle until the target shrinks —
# both asserted from /v1/metrics.
elastic-smoke:
	./ci.sh elastic

# Tier-2 chaos oracle: a seeded corpus of composed skew x fault x recovery x
# backend scenarios.  Failures print the exact repro command.
chaos:
	go run ./cmd/chaos -seed $(SEED) -count $(COUNT)

# Replay one scenario bit-identically (seed + index fully determine it):
#   make chaos-repro SEED=20260807 SCENARIO=17
chaos-repro:
	go run ./cmd/chaos -seed $(SEED) -scenario $(SCENARIO) -v

# Tiny deterministic grid for CI; artifact uploaded by the workflow.  The
# second run engages the parallel intra-rank kernels (-threads 2).
bench-smoke:
	go run ./cmd/bench -json BENCH_ci.json -smoke
	go run ./cmd/bench -json BENCH_ci_t2.json -smoke -threads 2

# Regenerate the full benchmark trajectory document.
bench-json:
	go run ./cmd/bench -json BENCH_full.json

# Gate the working tree against a recorded baseline:
#   make bench-compare OLD=BENCH_full.json
bench-compare:
	go run ./cmd/bench -compare $(OLD) -json BENCH_new.json

# Exchange-backend ablation: two-sided ALLTOALLV vs fused overlap vs
# one-sided RMA put, under PGAS and pure-MPI intra-node pricing.
bench-exchange:
	go run ./cmd/bench -exp exchange

# Intra-rank kernel ablation (the Fig. 4 companion): introsort vs LSD radix
# vs fork-join task merge sort, plus the core.LocalSort dispatch table.
bench-local:
	go run ./cmd/bench -exp local

# Resilience ablation (extension, no paper figure): degradation curve of
# modelled makespan under seeded fault schedules (drop rate x crashes).
bench-fault:
	go run ./cmd/bench -exp fault

# Graceful-degradation ablation (extension, no paper figure): crash-respawn
# vs die-shrink recovery — makespan overhead, agreement rounds, shrink time
# and survivor counts per schedule.
bench-shrink:
	go run ./cmd/bench -exp shrink

# Skew ablation (PGX.D-style duplicate floods): output imbalance vs flood
# fraction for value-only samplesort splitters, tie-broken splitters, and
# the histogram sort's count-exact splitting.
bench-skew:
	go run ./cmd/bench -exp skew

# k-ary probing ablation: refinement rounds and modelled Splitting time vs
# probes per boundary (1, 2, 4, 8, 16) at P in {16, 64}, full-range keys.
bench-split:
	go run ./cmd/bench -exp split

# Out-of-core ablation: spilled runs, scratch traffic and modelled merge
# time vs external-merge fan-in (2, 4, 8, 16) under a 1/8 memory budget,
# against the fully resident baseline.
bench-ooc:
	go run ./cmd/bench -exp ooc

# Elasticity ablation: two back-to-back streams, static low/high
# provisioning vs a mid-stream grow — the makespan cost of joining ranks
# against the cost of over- or under-provisioning.
bench-elastic:
	go run ./cmd/bench -exp elastic
