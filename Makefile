# Developer entry points; `make ci` is the gate CI and pre-push runs.

.PHONY: ci test race bench-smoke bench-json bench-compare

ci:
	./ci.sh

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/comm ./internal/psort ./internal/core

# Tiny deterministic grid for CI; artifact uploaded by the workflow.
bench-smoke:
	go run ./cmd/bench -json BENCH_ci.json -smoke

# Regenerate the full benchmark trajectory document.
bench-json:
	go run ./cmd/bench -json BENCH_full.json

# Gate the working tree against a recorded baseline:
#   make bench-compare OLD=BENCH_full.json
bench-compare:
	go run ./cmd/bench -compare $(OLD) -json BENCH_new.json
